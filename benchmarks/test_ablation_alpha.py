"""Ablation — alpha as a per-partition vector vs a fixed scalar.

The paper argues for alpha_i = W(P_i, V)/W(V, V) (dynamic, per
partition) over a single constant. This bench scores a pool of
candidate partitionings of the D1 supergraph with the vector objective
and with fixed scalars, and compares how well each objective's ranking
agrees with the external quality metric (ANS): the number of candidate
pairs ordered the same way by the objective and by ANS.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.core.alpha_cut import alpha_cut_value
from repro.metrics.ans import ans
from repro.pipeline.schemes import run_scheme

ALPHAS = (None, 0.25, 0.5, 0.75)  # None = paper's vector
K_VALUES = (3, 5, 7, 9)
N_SEEDS = 4


def _concordance(objective_scores, quality_scores):
    """Fraction of pairs where lower objective implies lower ANS."""
    agree = total = 0
    n = len(objective_scores)
    for i in range(n):
        for j in range(i + 1, n):
            if objective_scores[i] == objective_scores[j]:
                continue
            total += 1
            same_order = (objective_scores[i] < objective_scores[j]) == (
                quality_scores[i] < quality_scores[j]
            )
            agree += same_order
    return agree / total if total else 0.0


def test_ablation_alpha_vector_vs_scalar(benchmark, d1_graph):
    def run():
        candidates = []
        for k in K_VALUES:
            for seed in range(N_SEEDS):
                result = run_scheme("AG", d1_graph, k, seed=seed)
                candidates.append(result.labels)
        from repro.graph.affinity import congestion_affinity

        affinity = congestion_affinity(d1_graph)
        quality = [
            ans(d1_graph.features, labels, d1_graph.adjacency)
            for labels in candidates
        ]
        scores = {}
        for alpha in ALPHAS:
            scores[alpha] = [
                alpha_cut_value(affinity, labels, alpha=alpha)
                for labels in candidates
            ]
        return quality, scores

    quality, scores = benchmark.pedantic(run, rounds=1, iterations=1)

    concordance = {
        ("vector" if a is None else f"alpha={a}"): _concordance(s, quality)
        for a, s in scores.items()
    }
    print_table(
        "Ablation: objective-vs-ANS ranking concordance",
        ["alpha", "concordance"],
        [[name, round(value, 4)] for name, value in concordance.items()],
    )
    save_results("ablation_alpha", {"concordance": concordance})

    # the vector objective must be a meaningful quality proxy, and at
    # least competitive with the best fixed scalar
    vector = concordance["vector"]
    best_scalar = max(v for k, v in concordance.items() if k != "vector")
    assert vector > 0.5
    assert vector >= best_scalar - 0.15
