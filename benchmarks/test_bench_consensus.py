"""Bench — consensus layouts over the simulated morning.

Repeatedly partitioning (the paper's operating mode) gives a different
layout per interval; operators often need one layout for a whole
period. This bench partitions several intervals of the D1 series,
fuses them with alpha-Cut consensus, and compares the consensus
layout's per-snapshot quality against the tailor-made layouts: the
consensus must stay valid and within a bounded quality factor of the
per-snapshot optima while being a single, stable layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.analysis.consensus import consensus_partition, stability_map
from repro.datasets.small import small_network_series
from repro.metrics.ans import ans
from repro.metrics.validation import validate_partitioning
from repro.network.dual import build_road_graph
from repro.pipeline.schemes import run_scheme

K = 4
SNAPSHOTS = (40, 60, 80, 100)


def test_consensus_layout_quality(benchmark):
    network, series = small_network_series(seed=7)
    graph = build_road_graph(network)

    def run():
        labelings = []
        per_snapshot_ans = []
        for t in SNAPSHOTS:
            g_t = graph.with_features(series[t])
            labels = run_scheme("ASG", g_t, K, seed=0).labels
            labelings.append(labels)
            per_snapshot_ans.append(ans(series[t], labels, graph.adjacency))

        layout = consensus_partition(
            graph.adjacency, labelings, k=K, method="alphacut", seed=0
        )
        consensus_ans = [
            ans(series[t], layout, graph.adjacency) for t in SNAPSHOTS
        ]
        stability = stability_map(graph.adjacency, labelings)
        return per_snapshot_ans, consensus_ans, layout, float(stability.mean())

    per_snapshot, consensus, layout, stability = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        [t, round(per_snapshot[i], 4), round(consensus[i], 4)]
        for i, t in enumerate(SNAPSHOTS)
    ]
    print_table(
        f"Consensus layout vs per-snapshot layouts (ANS, k={K})",
        ["t", "tailor-made", "consensus"],
        rows,
    )
    save_results(
        "bench_consensus",
        {
            "snapshots": list(SNAPSHOTS),
            "per_snapshot_ans": per_snapshot,
            "consensus_ans": consensus,
            "mean_stability": stability,
        },
    )

    # one valid connected layout for the whole period
    validation = validate_partitioning(graph.adjacency, layout)
    assert validation.is_valid and validation.k == K
    # its median quality stays within a bounded factor of the
    # tailor-made layouts (which are free to move every interval)
    assert np.median(consensus) <= 5 * max(np.median(per_snapshot), 0.02)