"""Setup shim for environments whose pip cannot build wheels offline."""

from setuptools import setup

setup()
