"""Unit tests for the SLO tracker (``repro.obs.slo``).

Everything runs against an injected fake clock, so the multi-window
burn-rate semantics — the part that guards the live serving plane —
are tested deterministically: burst-in-one-window must not trip the
multi-window rule, sustained errors across every window must.
"""

import pytest

from repro.exceptions import DataError
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLObjective, SLOTracker, default_objectives


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(windows=(10.0, 60.0), objective=0.99, kind="availability",
                 threshold_s=None, clock=None):
    clock = clock or FakeClock()
    obj = SLObjective(
        name="t", kind=kind, objective=objective,
        threshold_s=threshold_s, windows_s=windows,
    )
    return SLOTracker([obj], clock=clock), clock


class TestSLObjective:
    def test_valid_objective_round_trips(self):
        obj = SLObjective(name="avail", kind="availability", objective=0.999)
        doc = obj.to_dict()
        assert doc["name"] == "avail"
        assert doc["objective"] == 0.999
        assert obj.budget == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nonsense", "objective": 0.9},
            {"kind": "availability", "objective": 0.0},
            {"kind": "availability", "objective": 1.0},
            {"kind": "latency", "objective": 0.9},  # missing threshold
            {"kind": "latency", "objective": 0.9, "threshold_s": -1.0},
            {"kind": "availability", "objective": 0.9, "windows_s": ()},
            {"kind": "availability", "objective": 0.9, "windows_s": (0.0,)},
            {"kind": "availability", "objective": 0.9, "burn_threshold": 0.0},
        ],
    )
    def test_invalid_objectives_rejected(self, kwargs):
        with pytest.raises(DataError):
            SLObjective(name="x", **kwargs)

    def test_tracker_rejects_empty_and_duplicate_names(self):
        with pytest.raises(DataError):
            SLOTracker([])
        obj = SLObjective(name="x", kind="availability", objective=0.9)
        with pytest.raises(DataError):
            SLOTracker([obj, obj])


class TestBurnRate:
    def test_idle_tracker_is_not_burning_and_budget_full(self):
        tracker, __ = make_tracker()
        assert tracker.burning() is False
        entry = tracker.evaluate()[0]
        assert entry["budget_remaining"] == 1.0
        for window in entry["windows"]:
            assert window["burn_rate"] == 0.0

    def test_all_good_traffic_not_burning(self):
        tracker, clock = make_tracker()
        for __ in range(20):
            tracker.record(0.001, ok=True, n=10)
            clock.advance(1.0)
        assert tracker.burning() is False
        assert tracker.evaluate()[0]["budget_remaining"] == 1.0

    def test_sustained_errors_burn_every_window(self):
        tracker, clock = make_tracker(windows=(5.0, 20.0), objective=0.99)
        # 50% errors for 25 s: error_rate 0.5 / budget 0.01 = burn 50
        for __ in range(25):
            tracker.record(0.001, ok=True, n=1)
            tracker.record(0.001, ok=False, n=1)
            clock.advance(1.0)
        entry = tracker.evaluate()[0]
        assert entry["burning"] is True
        for window in entry["windows"]:
            assert window["burn_rate"] == pytest.approx(50.0)
        assert entry["budget_remaining"] == 0.0
        assert tracker.burning() is True

    def test_short_burst_does_not_trip_the_long_window(self):
        """The multi-window rule: a 2 s error burst after a long clean
        stretch saturates the short window but not the long one."""
        tracker, clock = make_tracker(windows=(5.0, 60.0), objective=0.9)
        for __ in range(58):
            tracker.record(0.001, ok=True, n=100)
            clock.advance(1.0)
        for __ in range(2):
            tracker.record(0.001, ok=False, n=100)
            clock.advance(1.0)
        entry = tracker.evaluate()[0]
        short, long_ = entry["windows"]
        assert short["burn_rate"] > 1.0
        assert long_["burn_rate"] < 1.0
        assert entry["burning"] is False

    def test_window_with_no_traffic_blocks_burning(self):
        tracker, clock = make_tracker(windows=(5.0, 60.0))
        tracker.record(0.001, ok=False, n=10)
        clock.advance(50.0)  # the 5 s window is now empty
        tracker.record(0.001, ok=False, n=0)  # no-op
        entry = tracker.evaluate()[0]
        assert entry["windows"][0]["good"] + entry["windows"][0]["bad"] == 0
        assert entry["burning"] is False

    def test_old_samples_age_out_of_the_ring(self):
        tracker, clock = make_tracker(windows=(5.0, 10.0))
        tracker.record(0.001, ok=False, n=100)
        clock.advance(30.0)  # beyond the longest window + ring size
        tracker.record(0.001, ok=True, n=1)
        entry = tracker.evaluate()[0]
        assert all(w["bad"] == 0 for w in entry["windows"])
        assert entry["burning"] is False

    def test_latency_kind_counts_slow_requests_as_bad(self):
        tracker, clock = make_tracker(
            windows=(5.0, 10.0), objective=0.5, kind="latency", threshold_s=0.01
        )
        for __ in range(12):
            tracker.record(0.5, ok=True, n=1)  # ok but slow -> bad
            clock.advance(1.0)
        entry = tracker.evaluate()[0]
        assert entry["burning"] is True
        assert entry["windows"][0]["error_rate"] == 1.0

    def test_latency_kind_fast_requests_are_good(self):
        tracker, clock = make_tracker(
            windows=(5.0, 10.0), objective=0.5, kind="latency", threshold_s=0.01
        )
        for __ in range(12):
            tracker.record(0.001, ok=True, n=1)
            clock.advance(1.0)
        assert tracker.burning() is False

    def test_record_nonpositive_n_is_noop(self):
        tracker, __ = make_tracker()
        tracker.record(0.001, ok=False, n=0)
        tracker.record(0.001, ok=False, n=-5)
        entry = tracker.evaluate()[0]
        assert all(w["good"] + w["bad"] == 0 for w in entry["windows"])


class TestExport:
    def test_gauges_pass_the_strict_prometheus_parser(self):
        tracker, clock = make_tracker(windows=(5.0, 20.0))
        for __ in range(25):
            tracker.record(0.001, ok=False, n=2)
            clock.advance(1.0)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        samples, __t = parse_prometheus(render_prometheus(registry))
        names = {s.name for s in samples}
        assert "repro_slo_burn_rate" in names
        assert "repro_slo_error_budget_remaining" in names
        assert "repro_slo_burning" in names
        burns = [s for s in samples if s.name == "repro_slo_burn_rate"]
        assert {s.labels["window"] for s in burns} == {"5s", "20s"}
        assert all(s.labels["slo"] == "t" for s in burns)
        burning = next(s for s in samples if s.name == "repro_slo_burning")
        assert burning.value == 1.0

    def test_to_dict_is_the_slo_endpoint_payload(self):
        tracker, __ = make_tracker()
        doc = tracker.to_dict()
        assert doc["enabled"] is True
        assert doc["burning"] is False
        assert len(doc["objectives"]) == 1
        assert doc["objectives"][0]["objective"]["name"] == "t"


class TestDefaultObjectives:
    def test_standard_pair(self):
        objectives = default_objectives(0.010)
        assert [o.name for o in objectives] == ["availability", "latency"]
        avail, latency = objectives
        assert avail.kind == "availability"
        assert avail.objective == 0.999
        assert latency.kind == "latency"
        assert latency.threshold_s == 0.010
        assert latency.objective == 0.99
        # the pair boots a working tracker
        tracker = SLOTracker(objectives)
        assert tracker.burning() is False
