"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.network.generators import grid_network
from repro.network.io import save_network_json
from repro.traffic.profiles import hotspot_profile


class TestPartitionCommand:
    def test_builtin_dataset(self, capsys):
        assert main(["partition", "D1", "-k", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "partitions" in out
        assert "ans" in out

    def test_json_output(self, capsys):
        assert (
            main(["partition", "D1", "-k", "3", "--seed", "0", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 3
        assert "metrics" in payload
        assert payload["connected"] in (True, False)

    def test_network_file(self, tmp_path, capsys):
        net = grid_network(5, 5, two_way=True)
        net.set_densities(hotspot_profile(net, seed=0))
        path = tmp_path / "net.json"
        save_network_json(net, path)
        assert main(["partition", str(path), "-k", "3", "--seed", "0"]) == 0

    def test_labels_out(self, tmp_path):
        out = tmp_path / "labels.csv"
        assert (
            main(
                [
                    "partition",
                    "D1",
                    "-k",
                    "3",
                    "--seed",
                    "0",
                    "--labels-out",
                    str(out),
                ]
            )
            == 0
        )
        labels = np.loadtxt(out, dtype=int)
        assert labels.max() + 1 == 3

    def test_scheme_choice(self, capsys):
        assert main(["partition", "D1", "-k", "3", "--scheme", "NG"]) == 0
        assert "NG" in capsys.readouterr().out

    def test_json_stdout_is_pipeable(self, tmp_path, capsys):
        """With --json, stdout must be exactly one parseable JSON doc
        even when side outputs and observability flags are in play."""
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        labels = tmp_path / "labels.csv"
        code = main(
            [
                "--log-level", "info",
                "partition", "D1", "-k", "3", "--seed", "0", "--json",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
                "--labels-out", str(labels),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # would fail on any stray print
        assert payload["k"] == 3
        assert payload["run_id"]
        assert payload["manifest"]["config"]["scheme"] == "ASG"
        # the "wrote ..." diagnostics went to stderr instead
        assert "wrote" in captured.err

    def test_trace_and_metrics_outputs(self, tmp_path):
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "partition", "D1", "-k", "4", "--seed", "1", "--json",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        trace_doc = json.loads(trace.read_text())
        validate_chrome_trace(trace_doc)
        names = {ev["name"] for ev in trace_doc["traceEvents"]}
        assert {"run", "module1", "module2", "module3"} <= names
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["metrics"]["counters"]["supergraph.builds"] == 1
        assert metrics_doc["run_id"] == trace_doc["otherData"]["run_id"]

    def test_no_obs_files_without_flags(self, capsys):
        assert main(["partition", "D1", "-k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] is None  # no ObsContext was created

    def test_bad_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["partition", "D1", "--scheme", "XX"])


class TestSimulateCommand:
    def test_writes_series(self, tmp_path, capsys):
        out = tmp_path / "series.csv"
        code = main(
            [
                "simulate",
                "D1",
                "--vehicles",
                "100",
                "--steps",
                "10",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        series = np.loadtxt(out, delimiter=",")
        assert series.shape[0] == 10


class TestDatasetsCommand:
    def test_lists_requested_datasets(self, capsys):
        assert main(["datasets", "D1", "M1-small"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "M1-small" in out

    def test_unknown_dataset_fails(self, capsys):
        assert main(["datasets", "D9"]) == 1
        # diagnostics go to stderr so stdout stays pipeable
        assert "unknown" in capsys.readouterr().err


class TestProcessModePipesClean:
    """Worker-process diagnostics must never land on stdout.

    Runs the CLI as a real subprocess — pool workers inherit the
    process-level stdout fd, which in-process capsys capture cannot
    see — and asserts ``--json`` output stays machine-parseable in
    ``--parallel-mode process``.
    """

    def test_json_stdout_is_pure_json(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).parents[1])
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "partition",
                "D1",
                "-k",
                "4",
                "--seed",
                "0",
                "--json",
                "--parallel-mode",
                "process",
                "--workers",
                "2",
                "--shards",
                "2",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)  # raises if diagnostics leaked
        assert payload["k"] == 4
        manifest = payload["manifest"]
        assert manifest["parallel_mode_requested"] == "process"
        assert manifest["parallel_mode_resolved"] == "process"
        assert manifest["n_shards_requested"] == 2
        assert manifest["n_shards_resolved"] >= 1
        stages = manifest["stages"]
        assert stages["module1"]["parallel_mode"] == "serial"
        assert stages["module2"]["parallel_mode"] == "process"
        assert stages["module2"]["n_shards"] == manifest["n_shards_resolved"]
