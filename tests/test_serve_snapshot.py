"""SnapshotStore: epoch isolation, concurrency, and shm lifecycle.

Three layers of evidence that readers can never observe a torn epoch:

* **property tests** (hypothesis) drive the store through arbitrary
  interleavings of publishes, pins and staged batch reads and assert
  every batch's answers come from exactly one epoch — the pin taken
  at batch start keeps serving that labelling even while newer epochs
  land mid-batch;
* a **threaded stress test** (the pool from ``repro.util.parallel``)
  runs N readers against a hot publisher for ~a second and asserts
  zero exceptions and monotone epoch observations;
* **shared-memory lifecycle tests** run publish/retire/close under the
  ``shm_tracker`` leak fixture shared with ``test_util_shm.py``, so a
  forgotten unlink anywhere in the epoch lifecycle fails the suite.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServeError
from repro.serve import SegmentIndex, SnapshotStore
from repro.serve.snapshot import attach_snapshot
from repro.util.parallel import map_parallel

N_SEGMENTS = 60


def _index(epoch_value: int) -> SegmentIndex:
    """An index whose every label encodes the epoch that built it.

    With all labels equal to ``epoch_value``, any mixed-epoch read is
    immediately visible as a non-constant answer vector.
    """
    return SegmentIndex(np.full(N_SEGMENTS, epoch_value, dtype=np.int64))


# ----------------------------------------------------------------------
# property-based epoch isolation
class TestEpochIsolationProperties:
    @given(
        # each entry: how many publishes land between two chunks of one
        # staged batch read (0 = none); several batches in sequence
        schedule=st.lists(
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_never_mixes_epochs(self, schedule):
        """A batch pinned at its start answers everything from that
        epoch, however many publishes interleave with its chunks."""
        store = SnapshotStore()
        published = 0

        def publish_next():
            nonlocal published
            published += 1
            store.publish(_index(published))

        publish_next()  # epoch 1
        try:
            for batch_plan in schedule:
                answers = []
                with store.pinned() as snap:
                    start_epoch = snap.epoch
                    chunk = np.arange(0, N_SEGMENTS, len(batch_plan))
                    for publishes_now in batch_plan:
                        for __ in range(publishes_now):
                            publish_next()  # concurrent epoch swap
                        answers.append(snap.index.regions_of(chunk))
                flat = np.concatenate(answers)
                # labels encode the epoch: one distinct value == no torn read
                assert set(np.unique(flat)) == {start_epoch}
                # and the pinned epoch was the one at batch start
                assert start_epoch <= published
        finally:
            store.close()

    @given(n_publishes=st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_epoch_ids_are_monotone_and_current_wins(self, n_publishes):
        store = SnapshotStore()
        seen = []
        for i in range(1, n_publishes + 1):
            snap = store.publish(_index(i))
            seen.append(snap.epoch)
            assert store.current() is snap
        assert seen == list(range(1, n_publishes + 1))
        store.close()

    @given(
        reads=st.lists(
            st.tuples(
                st.booleans(),  # publish before this read?
                st.integers(min_value=0, max_value=N_SEGMENTS - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_unpinned_reads_always_see_a_complete_epoch(self, reads):
        """Even without pinning, a single read resolves one epoch whose
        index is internally consistent (labels all from that epoch)."""
        store = SnapshotStore()
        epoch = 1
        store.publish(_index(epoch))
        for do_publish, segment in reads:
            if do_publish:
                epoch += 1
                store.publish(_index(epoch))
            snap = store.current()
            assert snap.index.region_of(segment) == snap.epoch
        store.close()


# ----------------------------------------------------------------------
# store semantics
class TestStoreSemantics:
    def test_current_before_first_publish_raises(self):
        store = SnapshotStore()
        with pytest.raises(ServeError):
            store.current()
        with pytest.raises(ServeError):
            store.pin()

    def test_publish_requires_an_index(self):
        store = SnapshotStore()
        with pytest.raises(ServeError):
            store.publish(np.arange(4))  # raw arrays are not epochs

    def test_pin_keeps_retired_epoch_alive(self):
        store = SnapshotStore()
        store.publish(_index(1))
        snap1 = store.pin()
        store.publish(_index(2))
        # the retired epoch still answers from its own labelling
        assert snap1.index.region_of(0) == 1
        assert store.current().index.region_of(0) == 2
        assert store.pinned_epochs() == {1: 1}
        store.unpin(snap1)
        assert store.pinned_epochs() == {}
        store.close()

    def test_unpin_without_pin_raises(self):
        store = SnapshotStore()
        snap = store.publish(_index(1))
        with pytest.raises(ServeError):
            store.unpin(snap)
        store.close()

    def test_publish_after_close_raises(self):
        store = SnapshotStore()
        store.publish(_index(1))
        store.close()
        with pytest.raises(ServeError):
            store.publish(_index(2))
        store.close()  # idempotent

    def test_max_epochs_is_enforced(self):
        store = SnapshotStore(max_epochs=2)
        store.publish(_index(1))
        store.publish(_index(2))
        with pytest.raises(ServeError):
            store.publish(_index(3))
        store.close()

    def test_subscribe_fires_and_unsubscribes(self):
        store = SnapshotStore()
        epochs = []
        unsubscribe = store.subscribe(lambda snap: epochs.append(snap.epoch))
        store.publish(_index(1))
        store.publish(_index(2))
        unsubscribe()
        store.publish(_index(3))
        assert epochs == [1, 2]
        store.close()

    def test_listener_exception_does_not_block_publish(self):
        store = SnapshotStore()

        def bad_listener(snap):
            raise RuntimeError("boom")

        store.subscribe(bad_listener)
        snap = store.publish(_index(1))  # must not raise
        assert store.current() is snap
        store.close()


# ----------------------------------------------------------------------
# threaded stress: N readers + 1 publisher
class TestConcurrencyStress:
    def test_readers_never_crash_and_epochs_are_monotone(self):
        store = SnapshotStore()
        store.publish(_index(1))
        stop = threading.Event()
        errors = []

        def publisher():
            epoch = 1
            while not stop.is_set():
                epoch += 1
                try:
                    store.publish(_index(epoch))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        thread = threading.Thread(target=publisher, daemon=True)
        thread.start()

        deadline = time.monotonic() + 1.0

        def reader(worker: int):
            last_epoch = 0
            n_reads = 0
            try:
                while time.monotonic() < deadline:
                    with store.pinned() as snap:
                        ids = np.arange(worker, N_SEGMENTS, 4)
                        regions = snap.index.regions_of(ids)
                        # epoch-encoded labels: one batch, one epoch
                        assert set(np.unique(regions)) == {snap.epoch}
                        assert snap.epoch >= last_epoch  # monotone
                        last_epoch = snap.epoch
                    n_reads += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            return n_reads

        reads = map_parallel(reader, [0, 1, 2, 3], workers=4, mode="thread")
        stop.set()
        thread.join(timeout=10)
        store.close()
        assert not errors, f"concurrent readers/publisher failed: {errors!r}"
        assert all(n > 0 for n in reads), f"a reader made no progress: {reads}"
        assert store.last_epoch > 1, "publisher made no progress"


# ----------------------------------------------------------------------
# shared-memory lifecycle (under the leak-tracking fixture)
class TestSharedMemoryLifecycle:
    def test_publish_retire_close_leaks_nothing(self, shm_tracker):
        store = SnapshotStore(share_memory=True)
        for epoch in range(1, 6):
            store.publish(_index(epoch))
        store.close()
        assert len(shm_tracker) >= 5  # each epoch really was shm-backed

    def test_pinned_retired_epoch_released_on_unpin(self, shm_tracker):
        store = SnapshotStore(share_memory=True)
        store.publish(_index(1))
        snap1 = store.pin()
        store.publish(_index(2))  # retires epoch 1 while pinned
        store.unpin(snap1)  # last pin drops -> block unlinked
        store.close()

    def test_close_releases_even_with_outstanding_pins(self, shm_tracker):
        store = SnapshotStore(share_memory=True)
        store.publish(_index(1))
        store.pin()  # deliberately never unpinned
        store.publish(_index(2))
        store.close()  # must still unlink both epochs

    def test_attach_snapshot_round_trip(self, shm_tracker):
        store = SnapshotStore(share_memory=True)
        snap = store.publish(_index(7), meta={"scheme": "ASG"})
        descriptor = snap.descriptor()
        attached = attach_snapshot(descriptor)
        try:
            assert attached.epoch == snap.epoch
            assert attached.meta == {"scheme": "ASG"}
            np.testing.assert_array_equal(
                attached.index.labels, snap.index.labels
            )
        finally:
            attached._release()  # non-owner: closes the mapping only
            assert store.current() is snap  # owner unaffected
            store.close()

    def test_descriptor_requires_shared_memory_store(self):
        store = SnapshotStore()  # in-process only
        snap = store.publish(_index(1))
        with pytest.raises(ServeError):
            snap.descriptor()
        store.close()
