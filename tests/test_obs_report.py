"""Tests for the flight-recorder HTML report (`repro.obs.report`).

The report is built from a *real* observed run (ObsContext around
``run_scheme``), not hand-rolled fixtures, so the test breaks if the
exports and the report drift apart.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.cli import main
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.obs import ObsContext
from repro.obs.report import flight_recorder_html, trace_bars, write_report
from repro.pipeline.schemes import run_scheme
from repro.traffic.profiles import hotspot_profile


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    """One real observed run; returns (obs, trace_path, metrics_path)."""
    out = tmp_path_factory.mktemp("obsrun")
    network = grid_network(6, 6, two_way=True)
    graph = build_road_graph(network).with_features(
        hotspot_profile(network, n_hotspots=2, noise=0.0, seed=0)
    )
    obs = ObsContext(dataset="grid6", scheme="ASG")
    with obs.activate():
        run_scheme("ASG", graph, 3, seed=0)
    trace_path = obs.write_trace(out / "trace.json")
    metrics_path = obs.write_metrics(
        out / "metrics.json", config={"k": 3, "scheme": "ASG"}, seed=0
    )
    return obs, trace_path, metrics_path


class _StructureChecker(HTMLParser):
    """Collects tags and validates basic open/close balance."""

    def __init__(self):
        super().__init__()
        self.stack = []
        self.tags = set()
        self.errors = []

    VOID = {"meta", "br", "hr", "img", "rect", "line", "input", "link"}

    def handle_starttag(self, tag, attrs):
        self.tags.add(tag)
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack:
            self.errors.append(f"closing </{tag}> with empty stack")
        elif self.stack[-1] == tag:
            self.stack.pop()
        elif tag in self.stack:  # self-closing SVG elements parse oddly
            while self.stack and self.stack[-1] != tag:
                self.stack.pop()
            self.stack.pop()


class TestTraceBars:
    def test_nested_tree_depths(self):
        tree = {
            "spans": [
                {
                    "name": "run",
                    "start_s": 0.0,
                    "duration_s": 2.0,
                    "children": [
                        {"name": "module1", "start_s": 0.1, "duration_s": 0.5},
                        {"name": "module2", "start_s": 0.7, "duration_s": 1.0},
                    ],
                }
            ]
        }
        bars = trace_bars(tree)
        assert [(b[0], b[3]) for b in bars] == [
            ("run", 0), ("module1", 1), ("module2", 1),
        ]

    def test_chrome_trace_depth_reconstruction(self):
        doc = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0},
                {"name": "run", "ph": "X", "ts": 0.0, "dur": 100.0, "pid": 1, "tid": 0},
                {"name": "inner", "ph": "X", "ts": 10.0, "dur": 20.0, "pid": 1, "tid": 0},
                {"name": "later", "ph": "X", "ts": 50.0, "dur": 10.0, "pid": 1, "tid": 0},
            ]
        }
        bars = {b[0]: b[3] for b in trace_bars(doc)}
        assert bars == {"run": 0, "inner": 1, "later": 1}

    def test_empty_or_unknown(self):
        assert trace_bars(None) == []
        assert trace_bars({}) == []
        assert trace_bars({"unknown": 1}) == []


class TestFlightRecorderHtml:
    def test_contains_spans_metrics_and_manifest(self, observed_run):
        obs, __, __m = observed_run
        doc = flight_recorder_html(
            trace=obs.trace_tree(),
            metrics={
                "run_id": obs.run_id,
                "manifest": obs.manifest(config={"k": 3}, seed=0),
                "metrics": obs.metrics_dict(),
            },
        )
        # trace spans of the real pipeline (a bare run_scheme records
        # module 2/3; module1 belongs to the framework's dual transform)
        for span in ("module2", "module2.scan", "module3"):
            assert span in doc
        # metric families recorded by the run
        assert "kappa_scan.candidates" in doc
        assert "kmeans1d" in doc
        # manifest fields
        assert obs.run_id in doc
        assert "version.numpy" in doc
        assert "config.k" in doc
        # inline SVG timeline, self-contained
        assert "<svg" in doc

    def test_standalone_html(self, observed_run):
        obs, __, __m = observed_run
        doc = flight_recorder_html(trace=obs.trace_tree(), metrics=obs.metrics_dict())
        assert doc.startswith("<!DOCTYPE html>")
        checker = _StructureChecker()
        checker.feed(doc)
        assert not checker.errors, checker.errors
        assert not checker.stack, f"unclosed tags: {checker.stack}"
        assert {"html", "head", "body", "style", "table", "svg"} <= checker.tags
        # self-contained: no external fetches
        for marker in ("http://", "https://", "<script", "<link"):
            body = doc.split("</style>", 1)[1]
            assert marker not in body.replace(
                "http://www.w3.org/2000/svg", ""  # the SVG xmlns is not a fetch
            ), marker

    def test_handles_missing_trace(self, observed_run):
        obs, __, __m = observed_run
        doc = flight_recorder_html(trace=None, metrics=obs.metrics_dict())
        assert "no trace recorded" in doc

    def test_prometheus_snapshot_embedded(self, observed_run):
        obs, __, __m = observed_run
        doc = flight_recorder_html(metrics=obs.metrics_dict())
        assert "repro_kappa_scan_candidates_total" in doc

    def test_chrome_trace_run_id_picked_up(self, observed_run):
        obs, __, __m = observed_run
        doc = flight_recorder_html(trace=obs.chrome_trace())
        assert obs.run_id in doc


class TestWriteReport:
    def test_from_export_files(self, observed_run, tmp_path):
        __, trace_path, metrics_path = observed_run
        out = write_report(trace_path, metrics_path, tmp_path / "report.html")
        doc = out.read_text(encoding="utf-8")
        assert doc.startswith("<!DOCTYPE html>")
        assert "module2" in doc
        assert "git" in doc

    def test_both_none_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(None, None, tmp_path / "report.html")


class TestCli:
    def test_obs_report_command(self, observed_run, tmp_path, capsys):
        __, trace_path, metrics_path = observed_run
        out = tmp_path / "report.html"
        code = main(
            ["obs", "report", str(trace_path), str(metrics_path), "-o", str(out)]
        )
        assert code == 0
        doc = out.read_text(encoding="utf-8")
        assert "module2" in doc
        result = json.load(open(metrics_path))
        assert result["run_id"] in doc

    def test_metrics_only_with_dash(self, observed_run, tmp_path):
        __, __t, metrics_path = observed_run
        out = tmp_path / "report.html"
        assert main(["obs", "report", "-", str(metrics_path), "-o", str(out)]) == 0
        assert "no trace recorded" in out.read_text(encoding="utf-8")

    def test_bad_input_exits_nonzero(self, tmp_path):
        out = tmp_path / "report.html"
        assert main(["obs", "report", str(tmp_path / "nope.json"), "-o", str(out)]) == 1

    def test_custom_title(self, observed_run, tmp_path):
        __, trace_path, metrics_path = observed_run
        out = tmp_path / "report.html"
        main([
            "obs", "report", str(trace_path), str(metrics_path),
            "-o", str(out), "--title", "night shift run",
        ])
        assert "night shift run" in out.read_text(encoding="utf-8")
