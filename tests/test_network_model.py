"""Tests for repro.network.model."""

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network.geometry import Point
from repro.network.model import Intersection, RoadNetwork, RoadSegment


def _tiny_network():
    intersections = [
        Intersection(0, Point(0, 0)),
        Intersection(1, Point(100, 0)),
        Intersection(2, Point(100, 100)),
    ]
    segments = [
        RoadSegment(0, 0, 1, length=100.0, density=0.01),
        RoadSegment(1, 1, 0, length=100.0, density=0.02),
        RoadSegment(2, 1, 2, length=100.0, density=0.03),
    ]
    return RoadNetwork(intersections, segments)


class TestRoadSegment:
    def test_valid(self):
        seg = RoadSegment(0, 0, 1, length=50.0)
        assert seg.capacity == pytest.approx(50.0 * 0.15)

    def test_capacity_scales_with_lanes(self):
        one = RoadSegment(0, 0, 1, length=100.0, lanes=1)
        two = RoadSegment(0, 0, 1, length=100.0, lanes=2)
        assert two.capacity == 2 * one.capacity

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError, match="self-loop"):
            RoadSegment(0, 1, 1, length=10.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(NetworkError):
            RoadSegment(0, 0, 1, length=0.0)

    def test_negative_density_rejected(self):
        with pytest.raises(NetworkError):
            RoadSegment(0, 0, 1, length=1.0, density=-0.1)

    def test_zero_lanes_rejected(self):
        with pytest.raises(NetworkError):
            RoadSegment(0, 0, 1, length=1.0, lanes=0)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(NetworkError):
            RoadSegment(0, 0, 1, length=1.0, speed_limit=0.0)


class TestIntersection:
    def test_negative_id_rejected(self):
        with pytest.raises(NetworkError):
            Intersection(-1, Point(0, 0))


class TestRoadNetwork:
    def test_sizes(self):
        net = _tiny_network()
        assert net.n_intersections == 3
        assert net.n_segments == 3

    def test_dense_intersection_ids_required(self):
        with pytest.raises(NetworkError, match="dense"):
            RoadNetwork(
                [Intersection(0, Point(0, 0)), Intersection(2, Point(1, 1))],
                [],
            )

    def test_dense_segment_ids_required(self):
        inters = [Intersection(0, Point(0, 0)), Intersection(1, Point(1, 0))]
        with pytest.raises(NetworkError, match="dense"):
            RoadNetwork(inters, [RoadSegment(1, 0, 1, length=1.0)])

    def test_unknown_endpoint_rejected(self):
        inters = [Intersection(0, Point(0, 0)), Intersection(1, Point(1, 0))]
        with pytest.raises(NetworkError, match="unknown"):
            RoadNetwork(inters, [RoadSegment(0, 0, 7, length=1.0)])

    def test_outgoing_incoming(self):
        net = _tiny_network()
        assert net.outgoing(1) == (1, 2)
        assert net.incoming(1) == (0,)
        assert net.outgoing(2) == ()

    def test_outgoing_unknown_raises(self):
        with pytest.raises(NetworkError):
            _tiny_network().outgoing(99)

    def test_segment_lookup(self):
        net = _tiny_network()
        assert net.segment(2).target == 2
        with pytest.raises(NetworkError):
            net.segment(10)

    def test_segment_midpoint(self):
        net = _tiny_network()
        assert net.segment_midpoint(0) == Point(50, 0)

    def test_densities_vector(self):
        net = _tiny_network()
        np.testing.assert_allclose(net.densities(), [0.01, 0.02, 0.03])

    def test_set_densities(self):
        net = _tiny_network()
        net.set_densities([0.1, 0.2, 0.3])
        assert net.segment(1).density == 0.2

    def test_set_densities_wrong_shape(self):
        with pytest.raises(NetworkError, match="shape"):
            _tiny_network().set_densities([0.1])

    def test_set_densities_negative_rejected(self):
        with pytest.raises(NetworkError, match="non-negative"):
            _tiny_network().set_densities([0.1, -0.2, 0.3])

    def test_total_length(self):
        assert _tiny_network().total_length() == 300.0

    def test_area(self):
        assert _tiny_network().area_km2() == pytest.approx(0.01)
