"""Tests for temporal density smoothing."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.traffic.smoothing import (
    exponential_smoothing,
    interval_aggregate,
    moving_average,
)


@pytest.fixture
def noisy_series(rng):
    base = np.sin(np.linspace(0, 3, 40))[:, None] + 1.5
    return base + rng.random((40, 6)) * 0.2


class TestMovingAverage:
    def test_shape_preserved(self, noisy_series):
        out = moving_average(noisy_series, window=5)
        assert out.shape == noisy_series.shape

    def test_constant_series_unchanged(self):
        series = np.full((10, 3), 0.5)
        np.testing.assert_allclose(moving_average(series, 5), series)

    def test_reduces_variance(self, noisy_series):
        out = moving_average(noisy_series, window=7)
        raw_var = np.diff(noisy_series, axis=0).var()
        smooth_var = np.diff(out, axis=0).var()
        assert smooth_var < raw_var

    def test_window_one_is_identity(self, noisy_series):
        np.testing.assert_allclose(
            moving_average(noisy_series, 1), noisy_series
        )

    def test_interior_matches_naive(self, noisy_series):
        out = moving_average(noisy_series, window=5)
        t = 10
        np.testing.assert_allclose(
            out[t], noisy_series[t - 2 : t + 3].mean(axis=0)
        )

    def test_invalid_inputs(self, noisy_series):
        with pytest.raises(DataError):
            moving_average(noisy_series, 0)
        with pytest.raises(DataError):
            moving_average(np.ones(5), 3)
        with pytest.raises(DataError):
            moving_average(-np.ones((3, 2)), 3)


class TestExponentialSmoothing:
    def test_shape_preserved(self, noisy_series):
        assert exponential_smoothing(noisy_series).shape == noisy_series.shape

    def test_alpha_one_is_identity(self, noisy_series):
        np.testing.assert_allclose(
            exponential_smoothing(noisy_series, alpha=1.0), noisy_series
        )

    def test_first_row_seeds(self, noisy_series):
        out = exponential_smoothing(noisy_series, alpha=0.5)
        np.testing.assert_allclose(out[0], noisy_series[0])

    def test_recursion(self, noisy_series):
        alpha = 0.4
        out = exponential_smoothing(noisy_series, alpha=alpha)
        expected = alpha * noisy_series[1] + (1 - alpha) * out[0]
        np.testing.assert_allclose(out[1], expected)

    def test_smaller_alpha_smoother(self, noisy_series):
        rough = exponential_smoothing(noisy_series, alpha=0.9)
        smooth = exponential_smoothing(noisy_series, alpha=0.1)
        assert np.diff(smooth, axis=0).var() < np.diff(rough, axis=0).var()

    def test_invalid_alpha(self, noisy_series):
        with pytest.raises(DataError):
            exponential_smoothing(noisy_series, alpha=0.0)
        with pytest.raises(DataError):
            exponential_smoothing(noisy_series, alpha=1.5)


class TestIntervalAggregate:
    def test_downsamples(self, noisy_series):
        out = interval_aggregate(noisy_series, 4)
        assert out.shape == (10, noisy_series.shape[1])

    def test_block_means(self, noisy_series):
        out = interval_aggregate(noisy_series, 4)
        np.testing.assert_allclose(out[0], noisy_series[:4].mean(axis=0))
        np.testing.assert_allclose(out[-1], noisy_series[-4:].mean(axis=0))

    def test_factor_one_identity(self, noisy_series):
        np.testing.assert_allclose(
            interval_aggregate(noisy_series, 1), noisy_series
        )

    def test_total_mass_preserved(self, noisy_series):
        out = interval_aggregate(noisy_series, 4)
        assert out.sum() * 4 == pytest.approx(noisy_series.sum())

    def test_indivisible_length_rejected(self, noisy_series):
        with pytest.raises(DataError):
            interval_aggregate(noisy_series, 7)

    def test_invalid_factor(self, noisy_series):
        with pytest.raises(DataError):
            interval_aggregate(noisy_series, 0)
