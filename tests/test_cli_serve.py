"""End-to-end: ``repro serve`` as a subprocess, real sockets, SIGTERM.

Boots the server on an ephemeral port exactly as an operator would
(``python -m repro serve D1 --port 0``), talks to it over HTTP with
stdlib urllib, validates the ``/metrics`` payload with the strict
:func:`repro.obs.export.parse_prometheus`, and asserts the process
exits cleanly (code 0) on SIGTERM. Also covers the ``repro loadgen``
verb against the live server.
"""

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.obs.export import parse_prometheus

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        assert resp.status == 200
        return resp.read()


@pytest.fixture(scope="module")
def server():
    """A ``repro serve D1`` subprocess; yields its status line dict."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "D1", "-k", "4", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server died at startup: {proc.stderr.read()[-2000:]}"
            )
        status = json.loads(line)
        assert status["status"] == "serving"
        yield {"proc": proc, **status}
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)


class TestServeEndToEnd:
    def test_status_line_reports_the_bound_port(self, server):
        assert server["port"] > 0
        assert server["url"].endswith(str(server["port"]))
        assert server["n_segments"] == 436  # D1
        assert server["k"] == 4
        assert server["epoch"] == 1

    def test_single_lookup(self, server):
        payload = json.loads(_get(server["url"] + "/lookup?segment=17"))
        assert payload["segment"] == 17
        assert 0 <= payload["region"] < server["k"]
        assert payload["epoch"] == 1

    def test_point_lookup(self, server):
        payload = json.loads(_get(server["url"] + "/lookup?x=100&y=100"))
        assert 0 <= payload["segment"] < server["n_segments"]
        assert 0 <= payload["region"] < server["k"]

    def test_batch_get_and_post_agree(self, server):
        ids = [0, 5, 99, 400]
        got = json.loads(
            _get(server["url"] + "/batch?segments=" + ",".join(map(str, ids)))
        )
        req = urllib.request.Request(
            server["url"] + "/lookup/batch",
            data=json.dumps({"segments": ids}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            posted = json.loads(resp.read())
        assert got["regions"] == posted["regions"]
        assert len(got["regions"]) == len(ids)
        # and each batch element matches the single-lookup answer
        for sid, region in zip(ids, got["regions"]):
            single = json.loads(_get(server["url"] + f"/lookup?segment={sid}"))
            assert single["region"] == region

    def test_region_and_quality_endpoints(self, server):
        info = json.loads(_get(server["url"] + "/region/0"))
        assert info["region"] == 0
        assert info["n_segments"] > 0
        assert "bbox" in info
        boundary = json.loads(_get(server["url"] + "/region/0/boundary"))
        assert boundary["n_boundary_segments"] == len(boundary["segments"])
        quality = json.loads(_get(server["url"] + "/quality"))
        for key in ("k", "inter", "intra", "gdbi", "ans"):
            assert key in quality

    def test_bad_requests_get_400_not_a_crash(self, server):
        for path in (
            "/lookup?segment=not-a-number",
            "/lookup?segment=999999",
            "/lookup?x=1.0",  # missing y
            "/region/abc",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server["url"] + path)
            assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server["url"] + "/no-such-route")
        assert excinfo.value.code == 404
        # server is still healthy afterwards
        assert json.loads(_get(server["url"] + "/healthz"))["ok"] is True

    def test_metrics_pass_the_strict_parser(self, server):
        _get(server["url"] + "/lookup?segment=1")  # ensure traffic exists
        text = _get(server["url"] + "/metrics").decode("utf-8")
        samples, types = parse_prometheus(text)  # raises on any violation
        names = {s.name for s in samples}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_lookups_total" in names
        assert "repro_serve_epoch" in names
        assert "repro_serve_qps" in names
        assert "repro_serve_latency_p99_s" in names
        assert types["repro_serve_request_latency_s"] == "histogram"
        lookups = next(
            s.value for s in samples if s.name == "repro_serve_lookups_total"
        )
        assert lookups >= 1

    def test_loadgen_verb_against_live_server(self, server, tmp_path):
        out_path = tmp_path / "loadgen.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--port", str(server["port"]),
                "--duration", "0.4", "--connections", "2", "--depth", "8",
                "--json", "--out", str(out_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        report = json.loads(result.stdout)
        assert report["n_errors"] == 0
        assert report["n_requests"] > 0
        assert report["qps"] > 0
        assert report["latency_p99_s"] >= report["latency_p50_s"]
        assert json.loads(out_path.read_text()) == report

    def test_sigterm_shuts_down_cleanly(self, server):
        # runs last in file order, but must hold regardless: kill the
        # server and require exit code 0 with no traceback on stderr
        proc = server["proc"]
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        stderr = proc.stderr.read()
        assert rc == 0, f"non-zero exit {rc}: {stderr[-2000:]}"
        assert "Traceback" not in stderr
        assert "server stopped" in stderr


@pytest.fixture(scope="module")
def observed_server():
    """A server subprocess with the full telemetry plane switched on.

    stderr is drained on a background thread — with every request
    group access-logged, an undrained pipe would fill and block the
    server's event loop mid-test.
    """
    import threading

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--log-level", "info",
            "serve", "D1", "-k", "4", "--port", "0",
            "--slo-latency-ms", "50", "--record-live", "--live-hz", "10",
            "--access-log-sample", "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    stderr_lines: list = []
    drain = threading.Thread(
        target=lambda: stderr_lines.extend(proc.stderr), daemon=True
    )
    drain.start()
    try:
        line = proc.stdout.readline()
        if not line:
            drain.join(timeout=5)
            raise RuntimeError(
                "server died at startup: " + "".join(stderr_lines)[-2000:]
            )
        status = json.loads(line)
        assert status["status"] == "serving"
        yield {"proc": proc, "stderr_lines": stderr_lines, "drain": drain, **status}
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)
        drain.join(timeout=5)


class TestObservedServeEndToEnd:
    def test_slo_endpoint_reports_both_objectives(self, observed_server):
        _get(observed_server["url"] + "/lookup?segment=1")
        doc = json.loads(_get(observed_server["url"] + "/slo"))
        assert doc["enabled"] is True
        names = {e["objective"]["name"] for e in doc["objectives"]}
        assert names == {"availability", "latency"}

    def test_loadgen_trace_ids_appear_in_server_spans(self, observed_server):
        """The propagation chain: loadgen stamps deterministic
        traceparent headers; the server's request-group spans must
        carry those exact trace ids."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--port", str(observed_server["port"]),
                "--duration", "0.4", "--connections", "2", "--depth", "4",
                "--seed", "7", "--json",
            ],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        report = json.loads(result.stdout)
        assert len(report["trace_ids"]) == 2  # one per connection
        # the loadgen's post-run /slo fetch rides in the report
        assert report["slo"]["enabled"] is True

        doc = json.loads(_get(observed_server["url"] + "/trace"))
        assert doc["enabled"] is True
        seen = {s["attrs"].get("trace_id") for s in doc["spans"]}
        for trace_id in report["trace_ids"]:
            assert trace_id in seen, (trace_id, sorted(seen)[:5])
        span = next(
            s for s in doc["spans"]
            if s["attrs"].get("trace_id") == report["trace_ids"][0]
        )
        assert span["attrs"]["endpoint"] == "/lookup"
        assert span["attrs"]["status"] == 200
        assert span["attrs"]["epoch"] >= 1

    def test_slo_gauges_pass_the_strict_parser(self, observed_server):
        _get(observed_server["url"] + "/lookup?segment=1")
        text = _get(observed_server["url"] + "/metrics").decode("utf-8")
        samples, __ = parse_prometheus(text)
        names = {s.name for s in samples}
        for family in (
            "repro_slo_burn_rate",
            "repro_slo_error_budget_remaining",
            "repro_slo_burning",
        ):
            assert family in names, sorted(names)
        responses = [s for s in samples if s.name == "repro_serve_responses_total"]
        assert any(s.labels.get("status") == "200" for s in responses)

    def test_dashboard_serves_html_sparklines(self, observed_server):
        import time

        _get(observed_server["url"] + "/lookup?segment=1")
        time.sleep(0.3)  # let the 10 Hz live sampler tick
        html = _get(observed_server["url"] + "/dashboard").decode("utf-8")
        assert "serve.qps" in html
        assert "polyline" in html
        assert "availability" in html

    def test_obs_slo_verb_exits_zero_within_budget(self, observed_server):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "obs", "slo",
                "--port", str(observed_server["port"]),
            ],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "burning" in result.stdout

    def test_access_logs_go_to_stderr_not_stdout(self, observed_server):
        """--json consumers depend on stdout carrying exactly one JSON
        status line; the sampled access log must stay on stderr."""
        import time

        _get(observed_server["url"] + "/lookup?segment=2")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any("serve.access" in l for l in observed_server["stderr_lines"]):
                break
            time.sleep(0.05)
        logged = [
            l for l in observed_server["stderr_lines"] if "serve.access" in l
        ]
        assert logged, "no access log lines reached stderr"
        assert any("GET /lookup" in l for l in logged)
        assert any("trace_id=" in l for l in logged)

    def test_observed_sigterm_clean_and_only_status_on_stdout(
        self, observed_server
    ):
        proc = observed_server["proc"]
        _get(observed_server["url"] + "/lookup?segment=3")
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        observed_server["drain"].join(timeout=5)
        stdout_rest = proc.stdout.read()
        stderr = "".join(observed_server["stderr_lines"])
        assert rc == 0, f"non-zero exit {rc}: {stderr[-2000:]}"
        assert stdout_rest.strip() == ""  # only the status line on stdout
        assert "Traceback" not in stderr
