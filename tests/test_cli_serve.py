"""End-to-end: ``repro serve`` as a subprocess, real sockets, SIGTERM.

Boots the server on an ephemeral port exactly as an operator would
(``python -m repro serve D1 --port 0``), talks to it over HTTP with
stdlib urllib, validates the ``/metrics`` payload with the strict
:func:`repro.obs.export.parse_prometheus`, and asserts the process
exits cleanly (code 0) on SIGTERM. Also covers the ``repro loadgen``
verb against the live server.
"""

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.obs.export import parse_prometheus

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        assert resp.status == 200
        return resp.read()


@pytest.fixture(scope="module")
def server():
    """A ``repro serve D1`` subprocess; yields its status line dict."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "D1", "-k", "4", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server died at startup: {proc.stderr.read()[-2000:]}"
            )
        status = json.loads(line)
        assert status["status"] == "serving"
        yield {"proc": proc, **status}
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)


class TestServeEndToEnd:
    def test_status_line_reports_the_bound_port(self, server):
        assert server["port"] > 0
        assert server["url"].endswith(str(server["port"]))
        assert server["n_segments"] == 436  # D1
        assert server["k"] == 4
        assert server["epoch"] == 1

    def test_single_lookup(self, server):
        payload = json.loads(_get(server["url"] + "/lookup?segment=17"))
        assert payload["segment"] == 17
        assert 0 <= payload["region"] < server["k"]
        assert payload["epoch"] == 1

    def test_point_lookup(self, server):
        payload = json.loads(_get(server["url"] + "/lookup?x=100&y=100"))
        assert 0 <= payload["segment"] < server["n_segments"]
        assert 0 <= payload["region"] < server["k"]

    def test_batch_get_and_post_agree(self, server):
        ids = [0, 5, 99, 400]
        got = json.loads(
            _get(server["url"] + "/batch?segments=" + ",".join(map(str, ids)))
        )
        req = urllib.request.Request(
            server["url"] + "/lookup/batch",
            data=json.dumps({"segments": ids}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            posted = json.loads(resp.read())
        assert got["regions"] == posted["regions"]
        assert len(got["regions"]) == len(ids)
        # and each batch element matches the single-lookup answer
        for sid, region in zip(ids, got["regions"]):
            single = json.loads(_get(server["url"] + f"/lookup?segment={sid}"))
            assert single["region"] == region

    def test_region_and_quality_endpoints(self, server):
        info = json.loads(_get(server["url"] + "/region/0"))
        assert info["region"] == 0
        assert info["n_segments"] > 0
        assert "bbox" in info
        boundary = json.loads(_get(server["url"] + "/region/0/boundary"))
        assert boundary["n_boundary_segments"] == len(boundary["segments"])
        quality = json.loads(_get(server["url"] + "/quality"))
        for key in ("k", "inter", "intra", "gdbi", "ans"):
            assert key in quality

    def test_bad_requests_get_400_not_a_crash(self, server):
        for path in (
            "/lookup?segment=not-a-number",
            "/lookup?segment=999999",
            "/lookup?x=1.0",  # missing y
            "/region/abc",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server["url"] + path)
            assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server["url"] + "/no-such-route")
        assert excinfo.value.code == 404
        # server is still healthy afterwards
        assert json.loads(_get(server["url"] + "/healthz"))["ok"] is True

    def test_metrics_pass_the_strict_parser(self, server):
        _get(server["url"] + "/lookup?segment=1")  # ensure traffic exists
        text = _get(server["url"] + "/metrics").decode("utf-8")
        samples, types = parse_prometheus(text)  # raises on any violation
        names = {s.name for s in samples}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_lookups_total" in names
        assert "repro_serve_epoch" in names
        assert "repro_serve_qps" in names
        assert "repro_serve_latency_p99_s" in names
        assert types["repro_serve_request_latency_s"] == "histogram"
        lookups = next(
            s.value for s in samples if s.name == "repro_serve_lookups_total"
        )
        assert lookups >= 1

    def test_loadgen_verb_against_live_server(self, server, tmp_path):
        out_path = tmp_path / "loadgen.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--port", str(server["port"]),
                "--duration", "0.4", "--connections", "2", "--depth", "8",
                "--json", "--out", str(out_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        report = json.loads(result.stdout)
        assert report["n_errors"] == 0
        assert report["n_requests"] > 0
        assert report["qps"] > 0
        assert report["latency_p99_s"] >= report["latency_p50_s"]
        assert json.loads(out_path.read_text()) == report

    def test_sigterm_shuts_down_cleanly(self, server):
        # runs last in file order, but must hold regardless: kill the
        # server and require exit code 0 with no traceback on stderr
        proc = server["proc"]
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        stderr = proc.stderr.read()
        assert rc == 0, f"non-zero exit {rc}: {stderr[-2000:]}"
        assert "Traceback" not in stderr
        assert "server stopped" in stderr
