"""Tests for per-region MFD extraction."""

import numpy as np
import pytest

from repro.analysis.mfd import (
    RegionMFD,
    all_region_mfds,
    mean_mfd_tightness,
    region_mfd,
)
from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.traffic.simulator import MicroSimulator


@pytest.fixture(scope="module")
def simulation():
    network = grid_network(5, 5, spacing=100.0, two_way=True)
    sim = MicroSimulator(network, seed=0)
    result = sim.run(n_vehicles=300, n_steps=60, centre_bias=3.0)
    return network, result


class TestRegionMFD:
    def test_extraction_shapes(self, simulation):
        network, result = simulation
        labels = np.arange(network.n_segments) % 3
        mfd = region_mfd(result, labels, 0)
        assert mfd.accumulation.shape == (60,)
        assert mfd.flow.shape == (60,)

    def test_accumulation_matches_counts(self, simulation):
        network, result = simulation
        labels = np.zeros(network.n_segments, dtype=int)
        mfd = region_mfd(result, labels, 0)
        np.testing.assert_allclose(
            mfd.accumulation, result.counts.sum(axis=1)
        )

    def test_flows_nonnegative(self, simulation):
        network, result = simulation
        labels = np.arange(network.n_segments) % 2
        for mfd in all_region_mfds(result, labels):
            assert (mfd.flow >= 0).all()

    def test_flow_positive_when_loaded(self, simulation):
        network, result = simulation
        labels = np.zeros(network.n_segments, dtype=int)
        mfd = region_mfd(result, labels, 0)
        assert mfd.flow.sum() > 0

    def test_out_of_range_region(self, simulation):
        network, result = simulation
        with pytest.raises(DataError):
            region_mfd(result, np.zeros(network.n_segments, int), 3)

    def test_label_shape_checked(self, simulation):
        __, result = simulation
        with pytest.raises(DataError):
            region_mfd(result, [0, 1], 0)


class TestTightness:
    def test_deterministic_relation_is_tight(self):
        acc = np.linspace(0, 100, 50)
        flow = 2.0 * acc  # perfect linear MFD
        mfd = RegionMFD(0, acc, flow)
        assert mfd.tightness() < 0.05

    def test_scatter_is_loose(self, rng):
        acc = np.linspace(0, 100, 200)
        flow = rng.random(200) * 100  # no relation at all
        mfd = RegionMFD(0, acc, flow)
        assert mfd.tightness() > 0.3

    def test_empty_region_zero(self):
        mfd = RegionMFD(0, np.array([]), np.array([]))
        assert mfd.tightness() == 0.0

    def test_constant_accumulation_handled(self):
        mfd = RegionMFD(0, np.full(10, 5.0), np.full(10, 3.0))
        assert mfd.tightness() == pytest.approx(0.0)

    def test_invalid_degree(self):
        mfd = RegionMFD(0, np.array([1.0]), np.array([1.0]))
        with pytest.raises(DataError):
            mfd.tightness(degree=0)


class TestMeanTightness:
    def test_whole_network(self, simulation):
        network, result = simulation
        labels = np.zeros(network.n_segments, dtype=int)
        value = mean_mfd_tightness(result, labels)
        assert np.isfinite(value) and value >= 0.0

    def test_congestion_partition_tighter_than_random(self, simulation):
        """The motivating claim: congestion-homogeneous regions have
        tighter MFDs than an arbitrary (density-blind) split."""
        from repro.network.dual import build_road_graph
        from repro.pipeline.schemes import run_scheme

        network, result = simulation
        graph = build_road_graph(network)
        # partition by the simulated congestion (mean over the run)
        mean_density = result.densities.mean(axis=0)
        asg = run_scheme(
            "ASG", graph.with_features(mean_density), 3, seed=0
        ).labels
        rng = np.random.default_rng(0)
        scores_random = []
        for __ in range(5):
            random_labels = rng.integers(0, 3, size=network.n_segments)
            __, random_labels = np.unique(random_labels, return_inverse=True)
            scores_random.append(mean_mfd_tightness(result, random_labels))
        asg_score = mean_mfd_tightness(result, asg)
        assert asg_score <= np.median(scores_random) * 1.5
