"""Tests for superlink establishment and weighting (Eq. 3)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.supergraph.superlink import feature_variance, superlink_weights
from repro.supergraph.supernode import Supernode


def _two_supernode_setup(f0=0.1, f1=0.9):
    """Path 0-1-2-3 split into supernodes {0,1} and {2,3}."""
    g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)], features=[f0, f0, f1, f1])
    sns = [Supernode(0, [0, 1], f0), Supernode(1, [2, 3], f1)]
    return g, sns


class TestFeatureVariance:
    def test_uniform_zero(self):
        sns = [Supernode(0, [0], 1.0), Supernode(1, [1], 1.0)]
        assert feature_variance(sns) == 0.0

    def test_value(self):
        sns = [Supernode(0, [0], 0.0), Supernode(1, [1], 2.0)]
        assert feature_variance(sns) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            feature_variance([])


class TestSuperlinkWeights:
    def test_link_exists_where_road_links_cross(self):
        g, sns = _two_supernode_setup()
        w = superlink_weights(g.adjacency, sns)
        assert w[0, 1] > 0
        assert w[0, 0] == 0.0  # no self links

    def test_symmetric(self):
        g, sns = _two_supernode_setup()
        w = superlink_weights(g.adjacency, sns)
        assert w[0, 1] == w[1, 0]

    def test_weights_in_unit_interval(self):
        g, sns = _two_supernode_setup()
        w = superlink_weights(g.adjacency, sns)
        assert 0.0 < w[0, 1] <= 1.0

    def test_closer_features_higher_weight(self):
        g1, sns1 = _two_supernode_setup(0.4, 0.6)
        g2, sns2 = _two_supernode_setup(0.0, 1.0)
        w_close = superlink_weights(g1.adjacency, sns1)[0, 1]
        w_far = superlink_weights(g2.adjacency, sns2)[0, 1]
        # note: sigma^2 differs between the two setups; rescale by
        # using equal-variance pairs around different separations
        sns_mixed = [
            Supernode(0, [0, 1], 0.0),
            Supernode(1, [2, 3], 0.5),
        ]
        # direct check with fixed variance instead:
        assert w_close >= w_far  # both reduce to exp(-(df)^2 / (2 var))

    def test_supernode_mode_reduces_to_single_gaussian(self):
        """Paper-literal Eq. 3: the RMS collapses to the Gaussian."""
        g, sns = _two_supernode_setup(0.2, 0.8)
        sigma2 = feature_variance(sns)
        expected = np.exp(-((0.2 - 0.8) ** 2) / (2 * sigma2))
        w = superlink_weights(g.adjacency, sns, mode="supernode")
        assert w[0, 1] == pytest.approx(expected)

    def test_node_mode_uses_node_features(self):
        g = Graph(
            4,
            edges=[(0, 1), (1, 2), (2, 3)],
            features=[0.1, 0.5, 0.5, 0.9],  # the crossing link joins equals
        )
        sns = [Supernode(0, [0, 1], 0.3), Supernode(1, [2, 3], 0.7)]
        w = superlink_weights(
            g.adjacency, sns, node_features=g.features, mode="node"
        )
        # crossing link joins nodes with identical features -> weight 1
        assert w[0, 1] == pytest.approx(1.0)

    def test_node_mode_requires_features(self):
        g, sns = _two_supernode_setup()
        with pytest.raises(GraphError, match="node_features"):
            superlink_weights(g.adjacency, sns, mode="node")

    def test_invalid_mode(self):
        g, sns = _two_supernode_setup()
        with pytest.raises(GraphError):
            superlink_weights(g.adjacency, sns, mode="bogus")

    def test_zero_variance_unit_weights(self):
        g = Graph(2, edges=[(0, 1)], features=[0.5, 0.5])
        sns = [Supernode(0, [0], 0.5), Supernode(1, [1], 0.5)]
        w = superlink_weights(g.adjacency, sns)
        assert w[0, 1] == 1.0

    def test_no_cross_links_empty_matrix(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        sns = [Supernode(0, [0, 1], 0.1), Supernode(1, [2, 3], 0.9)]
        w = superlink_weights(g.adjacency, sns)
        assert w.nnz == 0

    def test_shape(self):
        g, sns = _two_supernode_setup()
        w = superlink_weights(g.adjacency, sns)
        assert w.shape == (2, 2)
