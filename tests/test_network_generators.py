"""Tests for the synthetic network generators."""

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.graph.components import is_connected
from repro.network.dual import build_road_graph
from repro.network.generators import (
    grid_network,
    ring_radial_network,
    urban_network,
)


class TestGridNetwork:
    def test_sizes(self):
        net = grid_network(3, 4, two_way=True)
        assert net.n_intersections == 12
        # undirected streets: 3*3 + 4*2 = 17 -> 34 directed
        assert net.n_segments == 34

    def test_one_way_halves_segments(self):
        two = grid_network(3, 4, two_way=True)
        one = grid_network(3, 4, two_way=False)
        assert one.n_segments == two.n_segments // 2

    def test_dual_connected(self):
        graph = build_road_graph(grid_network(4, 4, two_way=True))
        assert is_connected(graph.adjacency)

    def test_spacing_sets_lengths(self):
        net = grid_network(2, 2, spacing=123.0)
        assert all(seg.length == 123.0 for seg in net.segments)

    def test_too_small_raises(self):
        with pytest.raises(NetworkError):
            grid_network(1, 5)

    def test_bad_spacing_raises(self):
        with pytest.raises(NetworkError):
            grid_network(3, 3, spacing=-1.0)


class TestRingRadialNetwork:
    def test_sizes(self):
        net = ring_radial_network(2, 6)
        assert net.n_intersections == 1 + 2 * 6

    def test_dual_connected(self):
        graph = build_road_graph(ring_radial_network(3, 8))
        assert is_connected(graph.adjacency)

    def test_min_radials_enforced(self):
        with pytest.raises(NetworkError):
            ring_radial_network(2, 2)

    def test_hub_degree(self):
        net = ring_radial_network(1, 5)
        # 5 spokes, each two-way: 5 outgoing from hub
        assert len(net.outgoing(0)) == 5


class TestUrbanNetwork:
    def test_reproducible(self):
        a = urban_network(8, 8, seed=42)
        b = urban_network(8, 8, seed=42)
        assert a.n_segments == b.n_segments
        np.testing.assert_allclose(a.densities(), b.densities())
        assert a.segment(0).source == b.segment(0).source

    def test_different_seeds_differ(self):
        a = urban_network(10, 10, seed=1)
        b = urban_network(10, 10, seed=2)
        # jitter should move intersections
        assert (
            a.intersection(5).location.x != b.intersection(5).location.x
        )

    def test_street_graph_connected(self):
        net = urban_network(10, 10, removal_fraction=0.2, seed=0)
        graph = build_road_graph(net)
        assert is_connected(graph.adjacency)

    def test_removal_reduces_segments(self):
        none = urban_network(10, 10, removal_fraction=0.0, seed=0)
        some = urban_network(10, 10, removal_fraction=0.2, seed=0)
        assert some.n_segments < none.n_segments

    def test_cbd_streets_two_way(self):
        net = urban_network(9, 9, cbd_fraction=1.0, seed=0)
        # CBD covers everything -> every street is two-way: even count
        # and every segment has a reverse partner
        pairs = {(s.source, s.target) for s in net.segments}
        assert all((t, s) in pairs for (s, t) in pairs)

    def test_invalid_params_raise(self):
        with pytest.raises(NetworkError):
            urban_network(1, 5)
        with pytest.raises(NetworkError):
            urban_network(5, 5, cbd_fraction=1.5)
        with pytest.raises(NetworkError):
            urban_network(5, 5, jitter=0.9)
        with pytest.raises(NetworkError):
            urban_network(5, 5, removal_fraction=1.0)

    def test_scales_roughly_linearly(self):
        small = urban_network(10, 10, seed=0)
        large = urban_network(20, 20, seed=0)
        ratio = large.n_segments / small.n_segments
        assert 3.0 < ratio < 5.5
