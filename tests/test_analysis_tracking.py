"""Tests for partition tracking across time."""

import numpy as np
import pytest

from repro.analysis.tracking import PartitionTracker, churn, match_partitions
from repro.exceptions import PartitioningError
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.traffic.profiles import peak_hour_series


class TestMatchPartitions:
    def test_identity(self):
        ref = np.array([0, 0, 1, 1, 2])
        np.testing.assert_array_equal(match_partitions(ref, ref), ref)

    def test_permuted_labels_restored(self):
        ref = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        np.testing.assert_array_equal(match_partitions(ref, permuted), ref)

    def test_partial_overlap(self):
        ref = np.array([0, 0, 0, 1, 1, 1])
        cur = np.array([1, 1, 0, 0, 0, 0])  # label 1 mostly overlaps ref 0
        matched = match_partitions(ref, cur)
        # the majority block (last four) overlaps ref 1 with 3 items;
        # first two overlap ref 0
        assert matched[0] == 0
        assert matched[3] == 1

    def test_more_partitions_than_reference(self):
        ref = np.array([0, 0, 0, 0])
        cur = np.array([0, 0, 1, 1])
        matched = match_partitions(ref, cur)
        assert set(matched.tolist()) == {0, 1}
        assert matched.max() == 1  # fresh id above ref range

    def test_shape_mismatch_raises(self):
        with pytest.raises(PartitioningError):
            match_partitions([0, 1], [0, 1, 2])

    def test_empty(self):
        assert match_partitions([], []).size == 0


class TestChurn:
    def test_no_change(self):
        assert churn([0, 1, 1], [0, 1, 1]) == 0.0

    def test_full_change(self):
        assert churn([0, 0, 0], [1, 1, 1]) == 1.0

    def test_partial(self):
        assert churn([0, 0, 1, 1], [0, 1, 1, 1]) == pytest.approx(0.25)

    def test_shape_mismatch_raises(self):
        with pytest.raises(PartitioningError):
            churn([0], [0, 1])


class TestPartitionTracker:
    @pytest.fixture(scope="class")
    def setup(self):
        network = grid_network(6, 6, two_way=True)
        graph = build_road_graph(network)
        series = peak_hour_series(network, n_steps=12, seed=0)
        return graph, series

    def test_run_produces_records(self, setup):
        graph, series = setup
        tracker = PartitionTracker(graph, k=3, seed=0)
        records = tracker.run(series, timestamps=[0, 5, 10])
        assert len(records) == 3
        assert records[0].churn == 0.0
        assert all(r.labels.shape == (graph.n_nodes,) for r in records)

    def test_stable_pattern_low_churn(self, setup):
        """peak_hour_series keeps the spatial pattern fixed, so the
        regions barely move between snapshots."""
        graph, series = setup
        tracker = PartitionTracker(graph, k=3, seed=0)
        tracker.run(series, timestamps=[2, 4, 6])
        assert tracker.churn_series()[1:].max() < 0.3

    def test_contrast_series(self, setup):
        graph, series = setup
        tracker = PartitionTracker(graph, k=3, seed=0)
        tracker.run(series, timestamps=[0, 6])
        contrasts = tracker.contrast_series()
        assert contrasts.shape == (2,)
        assert (contrasts >= 0).all()

    def test_region_trajectory(self, setup):
        graph, series = setup
        tracker = PartitionTracker(graph, k=3, seed=0)
        tracker.run(series, timestamps=[0, 5, 10])
        trajectory = tracker.region_trajectory(0)
        assert trajectory.shape == (3,)
        assert np.isfinite(trajectory).all()

    def test_bad_series_rejected(self, setup):
        graph, __ = setup
        tracker = PartitionTracker(graph, k=3, seed=0)
        with pytest.raises(PartitioningError):
            tracker.run(np.ones(5))


class TestSparseRegionIds:
    def test_gapped_ids_have_nan_safe_summaries(self, rng):
        """Cross-snapshot matching can leave gaps in region ids; the
        record summaries must ignore the absent ids (regression for a
        NaN leak in max/min/contrast)."""
        from repro.analysis.tracking import SnapshotRecord

        labels = np.array([0, 0, 3, 3])  # ids 1, 2 absent
        means = np.full(4, np.nan)
        means[0], means[3] = 0.1, 0.5
        record = SnapshotRecord(t=0, labels=labels, churn=0.0, region_means=means)
        assert record.max_mean == pytest.approx(0.5)
        assert record.min_mean == pytest.approx(0.1)
        assert record.contrast == pytest.approx(0.4)

    def test_observe_after_region_loss(self):
        """A tracker run where a later snapshot has fewer regions must
        not produce NaN contrast."""
        network = grid_network(5, 5, two_way=True)
        graph = build_road_graph(network)
        series = peak_hour_series(network, n_steps=12, seed=1)
        tracker = PartitionTracker(graph, k=3, seed=0)
        tracker.run(series, timestamps=[0, 5, 10])
        assert np.isfinite(tracker.contrast_series()).all()
