"""Tests for the user-facing AlphaCutPartitioner."""

import numpy as np
import pytest

from repro.core.partitioner import AlphaCutPartitioner, alpha_cut_partition
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.graph.components import is_connected
from repro.supergraph.builder import build_supergraph


class TestAlphaCutPartitioner:
    def test_separates_cliques(self, two_cliques):
        result = AlphaCutPartitioner(2, seed=0).partition(two_cliques)
        assert result.k == 2
        labels = result.labels
        assert len(set(labels[:4].tolist())) == 1
        assert labels[0] != labels[4]

    def test_exact_k_enforced(self, small_grid_graph):
        for k in (2, 4, 6):
            result = AlphaCutPartitioner(k, seed=0).partition(small_grid_graph)
            assert result.k == k

    def test_exact_k_false_keeps_k_prime(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        result = AlphaCutPartitioner(2, exact_k=False, seed=0).partition(g)
        assert result.k == result.k_prime

    def test_k_prime_at_least_k(self, small_grid_graph):
        result = AlphaCutPartitioner(5, seed=0).partition(small_grid_graph)
        assert result.k_prime >= 5

    def test_greedy_refinement(self, small_grid_graph):
        result = AlphaCutPartitioner(
            4, refinement="greedy", seed=0
        ).partition(small_grid_graph)
        assert result.k == 4

    def test_accepts_raw_matrix(self, two_cliques):
        result = AlphaCutPartitioner(2, seed=0).partition(two_cliques.adjacency)
        assert result.k == 2

    def test_supergraph_expansion(self, small_grid_graph):
        sg = build_supergraph(small_grid_graph, seed=0)
        k = min(4, sg.n_supernodes)
        result = AlphaCutPartitioner(k, seed=0).partition(sg)
        assert result.node_labels is not None
        assert result.node_labels.shape == (small_grid_graph.n_nodes,)

    def test_partitions_connected(self, small_grid_graph):
        result = AlphaCutPartitioner(4, seed=3).partition(small_grid_graph)
        for i in range(result.k):
            members = np.flatnonzero(result.labels == i)
            assert is_connected(small_grid_graph.adjacency, members)

    def test_k_larger_than_n_rejected(self, two_cliques):
        with pytest.raises(PartitioningError):
            AlphaCutPartitioner(100).partition(two_cliques)

    def test_invalid_params(self):
        with pytest.raises(PartitioningError):
            AlphaCutPartitioner(0)
        with pytest.raises(PartitioningError):
            AlphaCutPartitioner(2, refinement="magic")

    def test_deterministic_given_seed(self, small_grid_graph):
        a = AlphaCutPartitioner(4, seed=11).partition(small_grid_graph)
        b = AlphaCutPartitioner(4, seed=11).partition(small_grid_graph)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestAlphaCutPartitionHelper:
    def test_returns_node_labels_for_supergraph(self, small_grid_graph):
        sg = build_supergraph(small_grid_graph, seed=0)
        k = min(3, sg.n_supernodes)
        labels = alpha_cut_partition(sg, k, seed=0)
        assert labels.shape == (small_grid_graph.n_nodes,)

    def test_returns_graph_labels_for_graph(self, two_cliques):
        labels = alpha_cut_partition(two_cliques, 2, seed=0)
        assert labels.shape == (8,)
