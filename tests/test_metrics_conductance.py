"""Tests for conductance and expansion."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.conductance import conductance, expansion, max_conductance


class TestConductance:
    def test_bridge_cut(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        values = conductance(two_cliques.adjacency, labels)
        # each side: cut 1, volume 13 -> 1/13
        assert values == [pytest.approx(1 / 13)] * 2

    def test_whole_graph_zero(self, two_cliques):
        assert conductance(two_cliques.adjacency, np.zeros(8, int)) == [0.0]

    def test_good_cut_lower_than_bad(self, two_cliques):
        good = max_conductance(
            two_cliques.adjacency, np.array([0] * 4 + [1] * 4)
        )
        bad = max_conductance(two_cliques.adjacency, np.array([0, 1] * 4))
        assert good < bad

    def test_values_in_unit_interval(self, two_cliques, rng):
        for __ in range(5):
            labels = rng.integers(0, 3, size=8)
            __, labels = np.unique(labels, return_inverse=True)
            values = conductance(two_cliques.adjacency, labels)
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_shape_checked(self, two_cliques):
        with pytest.raises(PartitioningError):
            conductance(two_cliques.adjacency, [0, 1])


class TestExpansion:
    def test_bridge(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        values = expansion(two_cliques.adjacency, labels)
        assert values == [pytest.approx(0.25)] * 2  # cut 1 / 4 nodes

    def test_whole_graph_zero(self, two_cliques):
        assert expansion(two_cliques.adjacency, np.zeros(8, int)) == [0.0]

    def test_weighted_edges_counted(self):
        g = Graph(4, edges=[(0, 1, 2.0), (1, 2, 5.0), (2, 3, 2.0)])
        values = expansion(g.adjacency, np.array([0, 0, 1, 1]))
        assert values == [pytest.approx(2.5)] * 2
