"""Whole-pipeline property tests.

hypothesis generates random small road networks with random congestion
fields; the framework must always deliver the contract: exactly k
disjoint, connected partitions covering every segment, for every
scheme, with sane metric values.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.validation import validate_partitioning
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network, ring_radial_network
from repro.pipeline.schemes import run_scheme


@st.composite
def network_with_densities(draw):
    """A small road network plus a random density field."""
    kind = draw(st.sampled_from(["grid", "ring"]))
    if kind == "grid":
        rows = draw(st.integers(3, 5))
        cols = draw(st.integers(3, 5))
        network = grid_network(rows, cols, two_way=True)
    else:
        rings = draw(st.integers(2, 3))
        radials = draw(st.integers(4, 7))
        network = ring_radial_network(rings, radials)
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    style = draw(st.sampled_from(["uniform", "bimodal", "sparse"]))
    n = network.n_segments
    if style == "uniform":
        densities = rng.random(n) * 0.15
    elif style == "bimodal":
        densities = np.where(rng.random(n) < 0.5, 0.01, 0.12)
        densities = densities * rng.uniform(0.8, 1.2, size=n)
    else:
        densities = np.zeros(n)
        hot = rng.choice(n, size=max(1, n // 5), replace=False)
        densities[hot] = rng.random(hot.size) * 0.15
    return network, densities, seed


class TestPipelineProperties:
    @given(data=network_with_densities(), k=st.integers(2, 5))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_asg_contract(self, data, k):
        network, densities, seed = data
        graph = build_road_graph(network).with_features(densities)
        result = run_scheme("ASG", graph, k, seed=seed)
        validation = validate_partitioning(graph.adjacency, result.labels)
        assert validation.is_valid
        assert result.labels.shape == (network.n_segments,)
        assert sum(validation.sizes) == network.n_segments

    @given(data=network_with_densities(), k=st.integers(2, 4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_ag_exact_k_and_connected(self, data, k):
        network, densities, seed = data
        graph = build_road_graph(network).with_features(densities)
        result = run_scheme("AG", graph, k, seed=seed)
        assert result.k == k
        assert validate_partitioning(graph.adjacency, result.labels).is_valid

    @given(data=network_with_densities())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_metrics_always_finite(self, data):
        network, densities, seed = data
        graph = build_road_graph(network).with_features(densities)
        result = run_scheme("ASG", graph, 3, seed=seed)
        metrics = result.evaluate(graph)
        for name, value in metrics.items():
            assert np.isfinite(value), (name, value)
        assert metrics["inter"] >= 0
        assert metrics["intra"] >= 0
        assert metrics["ans"] >= 0
