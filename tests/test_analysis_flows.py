"""Tests for inter-region flow analysis."""

import numpy as np
import pytest

from repro.analysis.flows import (
    boundary_crossings,
    internal_trip_share,
    region_od_matrix,
    through_traffic_share,
)
from repro.exceptions import DataError
from repro.traffic.mntg import Trajectory


@pytest.fixture
def labels():
    # 9 segments in three regions of three
    return np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])


@pytest.fixture
def trips():
    return [
        Trajectory(0, 0, [0, 1, 2]),          # internal to region 0
        Trajectory(1, 0, [0, 3, 4]),          # region 0 -> 1
        Trajectory(2, 0, [2, 3, 6, 7]),       # 0 -> 2 passing through 1
        Trajectory(3, 0, [8, 7]),             # internal to region 2
    ]


class TestRegionOdMatrix:
    def test_counts(self, trips, labels):
        od = region_od_matrix(trips, labels)
        assert od[0, 0] == 1
        assert od[0, 1] == 1
        assert od[0, 2] == 1
        assert od[2, 2] == 1
        assert od.sum() == 4

    def test_empty_trip_skipped(self, labels):
        od = region_od_matrix([Trajectory(0, 0, [])], labels)
        assert od.sum() == 0

    def test_invalid_labels(self, trips):
        with pytest.raises(DataError):
            region_od_matrix(trips, [])


class TestBoundaryCrossings:
    def test_crossings(self, trips, labels):
        crossings = boundary_crossings(trips, labels)
        assert crossings[(0, 1)] == 2  # trips 1 and 2 cross 0 -> 1
        assert crossings[(1, 2)] == 1  # trip 2 crosses 1 -> 2
        assert (2, 1) not in crossings

    def test_no_crossings_for_internal(self, labels):
        crossings = boundary_crossings([Trajectory(0, 0, [0, 1, 2])], labels)
        assert crossings == {}


class TestThroughTraffic:
    def test_pass_through_counted(self, trips, labels):
        # region 1: trip 1 ends there (anchored), trip 2 passes through
        share = through_traffic_share(trips, labels, 1)
        assert share == pytest.approx(0.5)

    def test_no_through_traffic(self, trips, labels):
        assert through_traffic_share(trips, labels, 0) == 0.0

    def test_untouched_region(self, labels):
        assert through_traffic_share([], labels, 2) == 0.0

    def test_region_range_checked(self, trips, labels):
        with pytest.raises(DataError):
            through_traffic_share(trips, labels, 9)


class TestInternalShare:
    def test_self_contained_region(self, trips, labels):
        shares = internal_trip_share(trips, labels)
        # region 2: one internal trip, one arriving (trip 2) -> 1/2
        assert shares[2] == pytest.approx(0.5)
        # region 0: one internal, two departing -> 1/3
        assert shares[0] == pytest.approx(1 / 3)

    def test_bounds(self, trips, labels, rng):
        random_trips = [
            Trajectory(i, 0, list(rng.integers(0, 9, size=4))) for i in range(20)
        ]
        shares = internal_trip_share(random_trips, labels)
        assert (shares >= 0).all() and (shares <= 1).all()
