"""Tests for the multilevel partitioner."""

import numpy as np
import pytest

from repro.baselines.kernighan_lin import cut_weight
from repro.baselines.multilevel import (
    MultilevelPartitioner,
    coarsen,
    heavy_edge_matching,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


class TestHeavyEdgeMatching:
    def test_halves_node_count_roughly(self, rng):
        n = 40
        g = Graph(n, edges=[(i, (i + 1) % n) for i in range(n)])
        coarse_of = heavy_edge_matching(g.adjacency, rng)
        n_coarse = coarse_of.max() + 1
        assert n / 2 <= n_coarse < n

    def test_prefers_heavy_edges(self, rng):
        # triangle with one heavy edge: the heavy pair must merge
        g = Graph(3, edges=[(0, 1, 10.0), (1, 2, 0.1), (0, 2, 0.1)])
        coarse_of = heavy_edge_matching(g.adjacency, rng)
        assert coarse_of[0] == coarse_of[1]
        assert coarse_of[2] != coarse_of[0]

    def test_isolated_nodes_stay_alone(self, rng):
        g = Graph(3, edges=[(0, 1)])
        coarse_of = heavy_edge_matching(g.adjacency, rng)
        assert coarse_of.max() + 1 == 2

    def test_dense_output_ids(self, rng):
        n = 20
        g = Graph(n, edges=[(i, (i + 1) % n) for i in range(n)])
        coarse_of = heavy_edge_matching(g.adjacency, rng)
        assert set(coarse_of.tolist()) == set(range(coarse_of.max() + 1))


class TestCoarsen:
    def test_weights_accumulate(self):
        # square 0-1-2-3; contract (0,1) and (2,3)
        g = Graph(4, edges=[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 3.0)])
        coarse_of = np.array([0, 0, 1, 1])
        coarse = coarsen(g.adjacency, coarse_of)
        assert coarse.shape == (2, 2)
        # cross edges (1,2) w=2 and (3,0) w=3 accumulate
        assert coarse[0, 1] == pytest.approx(5.0)

    def test_self_loops_dropped(self):
        g = Graph(2, edges=[(0, 1, 1.0)])
        coarse = coarsen(g.adjacency, np.array([0, 0]))
        assert coarse.nnz == 0

    def test_total_cross_weight_preserved(self, rng):
        n = 16
        g = Graph(n, edges=[(i, (i + 1) % n, float(i + 1)) for i in range(n)])
        coarse_of = heavy_edge_matching(g.adjacency, rng)
        coarse = coarsen(g.adjacency, coarse_of)
        # every uncollapsed edge keeps its weight
        collapsed = sum(
            w for u, v, w in g.edges() if coarse_of[u] == coarse_of[v]
        )
        assert coarse.sum() / 2 == pytest.approx(g.total_weight() - collapsed)


class TestMultilevelPartitioner:
    def test_separates_cliques(self, two_cliques):
        labels = MultilevelPartitioner(2, seed=0).partition(two_cliques)
        assert cut_weight(two_cliques.adjacency, labels) == pytest.approx(1.0)

    def test_exact_k(self, small_grid_graph):
        for k in (2, 3, 5):
            labels = MultilevelPartitioner(k, seed=0).partition(small_grid_graph)
            assert len(set(labels.tolist())) == k

    def test_k_one(self, two_cliques):
        labels = MultilevelPartitioner(1, seed=0).partition(two_cliques)
        assert labels.max() == 0

    def test_reasonable_balance(self, small_grid_graph):
        labels = MultilevelPartitioner(2, seed=0).partition(small_grid_graph)
        sizes = np.bincount(labels, minlength=2)
        assert sizes.min() >= small_grid_graph.n_nodes * 0.2

    def test_deterministic(self, small_grid_graph):
        a = MultilevelPartitioner(4, seed=5).partition(small_grid_graph)
        b = MultilevelPartitioner(4, seed=5).partition(small_grid_graph)
        np.testing.assert_array_equal(a, b)

    def test_larger_graph_coarsening_path(self):
        """A graph above coarsest_size exercises the full V-cycle."""
        n = 200
        edges = [(i, (i + 1) % n) for i in range(n)]
        edges += [(i, (i + 5) % n) for i in range(n)]
        g = Graph(n, edges=edges)
        labels = MultilevelPartitioner(2, coarsest_size=32, seed=0).partition(g)
        assert len(set(labels.tolist())) == 2
        # a ring-with-chords bisection should cut far fewer than half
        assert cut_weight(g.adjacency, labels) < g.total_weight() / 4

    def test_invalid_params(self, two_cliques):
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(0)
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(2, coarsest_size=2)
        with pytest.raises(PartitioningError):
            MultilevelPartitioner(100).partition(two_cliques)


class TestKmeansOnlyBaseline:
    def test_fragmentation_measured(self, small_grid_graph):
        from repro.baselines.kmeans_only import spatial_fragmentation

        labels, n_pieces = spatial_fragmentation(small_grid_graph, 4)
        assert labels.shape == (small_grid_graph.n_nodes,)
        # naive clustering shatters into more pieces than clusters
        assert n_pieces >= 4

    def test_clusters_track_density(self, small_grid_graph):
        from repro.baselines.kmeans_only import kmeans_only_partition

        labels = kmeans_only_partition(small_grid_graph, 3)
        feats = np.asarray(small_grid_graph.features)
        means = sorted(feats[labels == i].mean() for i in range(3))
        assert means[0] < means[-1]

    def test_invalid_inputs(self, small_grid_graph):
        from repro.baselines.kmeans_only import kmeans_only_partition

        with pytest.raises(PartitioningError):
            kmeans_only_partition(small_grid_graph.adjacency, 2)
        with pytest.raises(PartitioningError):
            kmeans_only_partition(small_grid_graph, 0)
