"""Tests for the point-queue microsimulator."""

import numpy as np
import pytest

from repro.network.generators import grid_network
from repro.traffic.mntg import MNTGenerator, Trajectory
from repro.traffic.simulator import MicroSimulator


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, two_way=True)


class TestRun:
    def test_output_shapes(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=50, n_steps=20)
        assert result.densities.shape == (20, network.n_segments)
        assert result.counts.shape == (20, network.n_segments)
        assert result.n_steps == 20

    def test_densities_are_counts_over_length(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=50, n_steps=10)
        lengths = np.array([s.length for s in network.segments])
        np.testing.assert_allclose(
            result.densities, result.counts / lengths[np.newaxis, :]
        )

    def test_reproducible(self, network):
        a = MicroSimulator(network, seed=3).run(n_vehicles=40, n_steps=15)
        b = MicroSimulator(network, seed=3).run(n_vehicles=40, n_steps=15)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_vehicles_complete(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=30, n_steps=200)
        assert result.completed_trips > 0

    def test_conservation(self, network):
        """Vehicles on the network never exceed those injected."""
        sim = MicroSimulator(network, seed=1)
        result = sim.run(n_vehicles=25, n_steps=30)
        assert result.counts.sum(axis=1).max() <= 25

    def test_capacity_never_exceeded(self, network):
        sim = MicroSimulator(network, seed=2)
        result = sim.run(n_vehicles=200, n_steps=40)
        capacities = np.maximum(1, [int(s.capacity) for s in network.segments])
        assert (result.counts <= capacities[np.newaxis, :]).all()

    def test_explicit_trips(self, network):
        trips = [Trajectory(0, 0, [0, 2]), Trajectory(1, 1, [0])]
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=0, n_steps=50, trips=trips)
        assert result.completed_trips == 2

    def test_snapshot_negative_index(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=10, n_steps=5)
        np.testing.assert_array_equal(result.snapshot(-1), result.densities[4])

    def test_invalid_args(self, network):
        with pytest.raises(ValueError):
            MicroSimulator(network, dt=0.0)
        with pytest.raises(ValueError):
            MicroSimulator(network, seed=0).run(n_vehicles=5, n_steps=0)

    def test_congestion_builds_with_demand(self, network):
        light = MicroSimulator(network, seed=0).run(n_vehicles=20, n_steps=30)
        heavy = MicroSimulator(network, seed=0).run(n_vehicles=500, n_steps=30)
        assert heavy.densities.max() > light.densities.max()


class TestFlows:
    def test_flows_shape(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=40, n_steps=20)
        assert result.flows.shape == (20, network.n_segments)
        assert (result.flows >= 0).all()

    def test_total_flow_accounts_every_advance(self, network):
        """Each vehicle contributes one flow event per segment it
        leaves; a completed trip of length L contributes exactly L."""
        trips = [Trajectory(0, 0, [0, 2]), Trajectory(1, 0, [0])]
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=0, n_steps=60, trips=trips)
        assert result.completed_trips == 2
        assert result.flows.sum() == 3  # 2 + 1 segment departures

    def test_no_flow_without_vehicles(self, network):
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=0, n_steps=5, trips=[])
        assert result.flows.sum() == 0

    def test_flow_dominated_by_completions(self, network):
        sim = MicroSimulator(network, seed=1)
        result = sim.run(n_vehicles=100, n_steps=30)
        # every completed trip discharged at least its final segment
        assert result.flows.sum() >= result.completed_trips
        assert result.flows.sum() > 0
