"""Tests for cross-process observability.

Covers the worker→parent wire formats (span trees and profile
samples), grafting worker traces into the parent timeline, the
pid-aware Chrome-trace export, merged flame graphs, the pool's
data-plane metrics (queue wait, per-worker busy time, startup,
serialization) and the Prometheus exposition of the ``parallel.*``
and ``shm.*`` families under all three parallel modes.
"""

import os
import time

import numpy as np
import pytest

from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.profile import (
    ProfileConfig,
    Profiler,
    merge_profiles,
    validate_speedscope,
)
from repro.obs.trace import (
    SPAN_WIRE_SCHEMA_VERSION,
    Tracer,
    activate_tracer,
    span_from_wire,
    validate_chrome_trace,
)
from repro.util.parallel import map_parallel
from repro.util.shm import ShardContext


# ---------------------------------------------------------------- helpers
def _square(x):
    return x * x


def _busy(x, seconds=0.05):
    """Burn CPU long enough for the worker profiler to sample it."""
    deadline = time.perf_counter() + seconds
    total = 0.0
    while time.perf_counter() < deadline:
        total += float(np.sum(np.arange(2000) * (x + 1)))
    return x


def _traced_square(x):
    from repro.obs.metrics import incr
    from repro.obs.trace import current_tracer

    incr("test.worker_calls")
    tracer = current_tracer()
    assert tracer is not None
    with tracer.span("inner", item=int(x)):
        return x * x


def _read_shared(x):
    from repro.util.shm import active_shard

    arr = active_shard().get("vec")
    return float(arr[x])


# ------------------------------------------------------------- span wire
class TestSpanWire:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("outer", depth=0):
            with tracer.span("inner", depth=1):
                pass
            with tracer.span("inner2"):
                pass
        return tracer

    def test_wire_round_trip_preserves_tree(self):
        tracer = self._sample_tracer()
        wire = tracer.to_wire()
        assert wire["schema_version"] == SPAN_WIRE_SCHEMA_VERSION
        assert wire["pid"] == os.getpid()
        (root,) = wire["spans"]
        rebuilt = span_from_wire(root)
        assert rebuilt.name == "outer"
        assert rebuilt.attrs["depth"] == 0
        assert [c.name for c in rebuilt.children] == ["inner", "inner2"]
        original = tracer.roots[0]
        assert rebuilt.duration == pytest.approx(original.duration)

    def test_wire_offset_shifts_all_starts(self):
        tracer = self._sample_tracer()
        (root,) = tracer.to_wire()["spans"]
        base = span_from_wire(root)
        shifted = span_from_wire(root, offset_s=1.5)
        assert shifted.start == pytest.approx(base.start + 1.5)
        assert shifted.children[0].start == pytest.approx(
            base.children[0].start + 1.5
        )

    def test_graft_attaches_under_current_span(self):
        worker = self._sample_tracer()
        wire = worker.to_wire()
        parent = Tracer()
        with parent.span("run"):
            grafted = parent.graft(wire, worker=3, item=7)
        (run,) = parent.roots
        assert [c.name for c in run.children] == ["outer"]
        (outer,) = grafted
        assert outer.attrs["pid"] == wire["pid"]
        assert outer.attrs["worker"] == 3
        assert outer.attrs["item"] == 7
        # grandchildren stay intact and do not get the graft attrs
        assert "pid" not in outer.children[0].attrs

    def test_graft_without_active_span_lands_at_roots(self):
        wire = self._sample_tracer().to_wire()
        parent = Tracer()
        parent.graft(wire)
        assert [s.name for s in parent.roots] == ["outer"]

    def test_graft_clamps_clock_skew(self):
        wire = self._sample_tracer().to_wire()
        wire["epoch_unix_s"] -= 3600.0  # worker clock behind the parent
        parent = Tracer()
        (outer,) = parent.graft(wire)
        assert outer.start >= 0.0

    def test_graft_rejects_unknown_schema(self):
        wire = self._sample_tracer().to_wire()
        wire["schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            Tracer().graft(wire)


# ---------------------------------------------------------- chrome trace
class TestChromeTraceMultiPid:
    def test_grafted_spans_get_their_own_pid_lane(self):
        worker = Tracer()
        with worker.span("worker:task"):
            with worker.span("shard.mine"):
                pass
        wire = worker.to_wire()
        wire["pid"] = 4242  # pretend it crossed a process boundary
        parent = Tracer()
        with parent.span("run"):
            parent.graft(wire, worker=0)
        trace = parent.to_chrome_trace()
        validate_chrome_trace(trace)
        pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert pids == {1, 4242}  # main lane keeps the serial pid 1
        # the worker span's children inherit the worker lane
        mine = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "shard.mine"
        ]
        assert mine and all(e["pid"] == 4242 for e in mine)
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        ]
        assert any("4242" in n for n in names)

    def test_serial_trace_has_no_worker_metadata(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("step"):
                pass
        trace = tracer.to_chrome_trace()
        validate_chrome_trace(trace)
        meta = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        ]
        assert len(meta) == 1  # only the main-process banner
        assert {e["pid"] for e in trace["traceEvents"]} == {1}


# --------------------------------------------------------- profile merge
class TestWorkerProfileMerge:
    def _run_profiler(self, seconds=0.05):
        prof = Profiler(ProfileConfig(hz=400))
        with prof:
            _busy(1, seconds=seconds)
        return prof

    def test_worker_payload_shape(self):
        prof = self._run_profiler()
        payload = prof.worker_payload()
        assert payload["schema_version"] == 1
        assert payload["pid"] == os.getpid()
        assert payload["samples"]
        thread, frames, count, seconds = payload["samples"][0]
        assert isinstance(thread, str)
        assert isinstance(frames, list)
        assert count >= 1 and seconds > 0

    def test_merge_rekeys_by_pid(self):
        parent = self._run_profiler()
        payload = self._run_profiler().worker_payload()
        payload["pid"] = 7777
        parent.merge_worker(payload)
        assert parent.worker_pids == [7777]
        doc = parent.speedscope()
        validate_speedscope(doc)
        names = {p["name"] for p in doc["profiles"]}
        assert any(n.startswith("pid:7777:") for n in names)
        # after a merge the parent's own threads are pid-prefixed too
        assert any(n.startswith(f"pid:{os.getpid()}:") for n in names)

    def test_serial_profile_names_unchanged(self):
        doc = self._run_profiler().speedscope()
        assert all(not p["name"].startswith("pid:") for p in doc["profiles"])

    def test_merge_rejects_unknown_schema(self):
        prof = self._run_profiler()
        payload = prof.worker_payload()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            prof.merge_worker(payload)

    def test_merge_profiles_combines_documents(self):
        doc_a = self._run_profiler().speedscope()
        doc_b = self._run_profiler().speedscope()
        for profile in doc_b["profiles"]:
            profile["name"] = f"pid:9999:{profile['name']}"
        merged = merge_profiles(doc_a, doc_b, name="combined")
        validate_speedscope(merged)
        assert merged["name"] == "combined"
        names = {p["name"] for p in merged["profiles"]}
        assert names == {p["name"] for p in doc_a["profiles"]} | {
            p["name"] for p in doc_b["profiles"]
        }

    def test_merge_profiles_folds_same_named_lanes(self):
        doc_a = self._run_profiler().speedscope()
        doc_b = self._run_profiler().speedscope()
        merged = merge_profiles(doc_a, doc_b)
        validate_speedscope(merged)
        # both docs profile MainThread → one combined lane
        names = [p["name"] for p in merged["profiles"]]
        assert names.count("MainThread") == 1


# ----------------------------------------------------- process-pool runs
class TestProcessPoolObservability:
    def test_worker_spans_grafted_with_attrs(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        with use_registry(reg), activate_tracer(tracer):
            with tracer.span("run"):
                out = map_parallel(
                    _traced_square, range(4), workers=2, mode="process"
                )
        assert out == [0, 1, 4, 9]
        (run,) = tracer.roots
        workers = [c for c in run.children if c.name.startswith("worker:")]
        assert len(workers) == 4
        pids = set()
        for span in workers:
            assert span.attrs["pid"] != os.getpid()
            assert span.attrs["worker"] in (0, 1)
            assert span.attrs["parent_span"] == "run"
            assert [c.name for c in span.children] == ["inner"]
            pids.add(span.attrs["pid"])
        # one worker may drain all four items before the second spins
        # up, so only the lower bound is deterministic
        assert 1 <= len(pids) <= 2
        assert reg.to_dict()["counters"]["test.worker_calls"] == 4

    def test_pool_metrics_recorded(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            map_parallel(_square, range(6), workers=2, mode="process")
        snap = reg.to_dict()
        gauges, hists = snap["gauges"], snap["histograms"]
        assert gauges["parallel.workers_used"] >= 1
        assert gauges["parallel.pool_startup_seconds"] >= 0
        assert hists["parallel.queue_wait_seconds"]["count"] == 6
        busy = {
            name: h
            for name, h in hists.items()
            if name.startswith("parallel.worker_busy_seconds[")
        }
        assert busy  # one labelled series per worker actually used
        # one busy-time observation per worker per map
        assert len(busy) == int(gauges["parallel.workers_used"])
        assert all(h["count"] == 1 for h in busy.values())

    def test_shard_data_plane_metrics(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with ShardContext() as shard:
                shard.put("vec", np.arange(8, dtype=np.float64))
                out = map_parallel(
                    _read_shared, range(4), workers=2, mode="process", shard=shard
                )
        assert out == [0.0, 1.0, 2.0, 3.0]
        snap = reg.to_dict()
        assert snap["counters"]["shm.shares"] == 1
        assert snap["counters"]["shm.attaches"] >= 1
        assert snap["counters"]["shm.leak_checks"] == 1
        assert snap["counters"]["shm.leak_checks_clean"] == 1
        assert snap["gauges"]["shm.arrays_registered"] == 1
        assert snap["gauges"]["shm.bytes_registered"] == 64
        assert snap["gauges"]["shm.bytes_shared"] >= 64
        assert snap["histograms"]["shm.share_seconds"]["count"] == 1

    def test_merged_flame_graph_spans_processes(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        prof = Profiler(ProfileConfig(hz=400), registry=reg, tracer=tracer)
        with use_registry(reg), activate_tracer(tracer), prof:
            with tracer.span("run"):
                map_parallel(_busy, range(4), workers=2, mode="process")
        assert len(prof.worker_pids) == 2
        doc = prof.speedscope()
        validate_speedscope(doc)
        pids = {
            p["name"].split(":")[1]
            for p in doc["profiles"]
            if p["name"].startswith("pid:")
        }
        assert len(pids) >= 2  # parent plus at least one worker


# -------------------------------------------------- prometheus families
class TestPrometheusAcrossModes:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_parallel_and_shm_families_expose(self, mode):
        reg = MetricsRegistry()
        with use_registry(reg):
            with ShardContext() as shard:
                shard.put("vec", np.arange(8, dtype=np.float64))
                map_parallel(
                    _read_shared, range(4), workers=2, mode=mode, shard=shard
                )
        samples, types = parse_prometheus(render_prometheus(reg))
        names = {s.name for s in samples}
        assert "repro_shm_arrays_registered" in names
        assert "repro_shm_leak_checks_total" in names
        assert "repro_shm_leak_checks_clean_total" in names
        assert types["repro_parallel_maps_total"] == "counter"
        if mode != "serial":
            assert "repro_parallel_utilization" in names
            assert types["repro_parallel_item_seconds"] == "histogram"
        if mode == "process":
            assert "repro_shm_attaches_total" in names
            assert types["repro_shm_attach_seconds"] == "histogram"
            assert types["repro_parallel_queue_wait_seconds"] == "histogram"
            assert types["repro_parallel_worker_busy_seconds"] == "histogram"
            workers = {
                s.labels["worker"]
                for s in samples
                if s.name == "repro_parallel_worker_busy_seconds_count"
            }
            assert workers and workers <= {"0", "1"}

    def test_labelled_histogram_family_renders_once(self):
        reg = MetricsRegistry()
        reg.observe("parallel.worker_busy_seconds[worker=0]", 0.5)
        reg.observe("parallel.worker_busy_seconds[worker=1]", 0.25)
        text = render_prometheus(reg)
        assert (
            text.count("# TYPE repro_parallel_worker_busy_seconds histogram")
            == 1
        )
        samples, __ = parse_prometheus(text)  # parser rejects duplicates
        counts = [
            s
            for s in samples
            if s.name == "repro_parallel_worker_busy_seconds_count"
        ]
        assert {s.labels["worker"] for s in counts} == {"0", "1"}
