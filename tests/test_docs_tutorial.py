"""Execute every Python block in docs/tutorial.md.

Documentation that doesn't run is worse than none: this test extracts
the tutorial's fenced code blocks and executes them sequentially in
one namespace, so any API drift breaks the build.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "tutorial.md"

# the tutorial's heavy step-8 simulation is downscaled for CI speed
_SUBSTITUTIONS = {
    "n_vehicles=20000, n_steps=120": "n_vehicles=500, n_steps=20",
}


def _code_blocks():
    text = TUTORIAL.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the viz block writes files to cwd
    blocks = _code_blocks()
    assert len(blocks) >= 8, "tutorial lost its code blocks"
    namespace = {}
    for i, block in enumerate(blocks):
        for old, new in _SUBSTITUTIONS.items():
            block = block.replace(old, new)
        try:
            exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")

    # spot-check the artefacts the tutorial promises
    assert namespace["result"].k == 6
    assert namespace["metrics"]["k"] == 6.0
    assert namespace["layout"].shape == (namespace["graph"].n_nodes,)
    assert namespace["controlled"].counts.shape[1] == namespace[
        "network"
    ].n_segments


def test_tutorial_artifacts_cleanup(tmp_path, monkeypatch):
    """The viz/geojson block writes files; run it in a tmp dir."""
    monkeypatch.chdir(tmp_path)
    blocks = _code_blocks()
    namespace = {}
    # run the minimal prefix needed for the export block:
    # data, road graph, partition, then the viz/geojson block itself
    for idx in (0, 1, 2, 6):
        exec(compile(blocks[idx], f"block-{idx}", "exec"), namespace)
    assert (tmp_path / "regions.svg").exists()
    assert (tmp_path / "regions.geojson").exists()
