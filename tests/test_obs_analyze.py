"""Tests for repro.obs.analyze: critical paths and parallel slack.

Built around hand-crafted span trees whose critical path, self times
and parallel regions are known in closed form, fed through all three
input adapters (live Tracer, nested JSON, Chrome events) to pin the
format-independence contract, plus the strict ``validate_analysis``
rejection surface, a hypothesis round trip for the report document,
and the ``repro obs analyze`` CLI.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.exceptions import DataError
from repro.obs.analyze import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    analyze_trace,
    validate_analysis,
)
from repro.obs.convergence import ConvergenceTrace
from repro.obs.trace import Tracer


# ----------------------------------------------------------------------
# synthetic trace builders
def _span(name, start, dur, children=(), attrs=None):
    return {
        "name": name,
        "start_s": float(start),
        "duration_s": float(dur),
        "attrs": attrs or {},
        "children": list(children),
    }


def _nested(*roots):
    total = max(s["start_s"] + s["duration_s"] for s in roots)
    return {"epoch_unix_s": 0.0, "total_s": total, "spans": list(roots)}


def _chrome_events(span, pid=0, tid=0, out=None):
    """Nested span dict -> flat Chrome complete events (ts/dur in us)."""
    if out is None:
        out = []
    out.append(
        {
            "ph": "X",
            "name": span["name"],
            "ts": span["start_s"] * 1e6,
            "dur": span["duration_s"] * 1e6,
            "pid": pid,
            "tid": tid,
            "args": span["attrs"],
        }
    )
    for child in span["children"]:
        _chrome_events(child, pid=pid, tid=tid, out=out)
    return out


def _serial_pipeline():
    """run(10s) -> module1(2) | module2(5, eigensolve 4 inside) | module3(3).

    Fully serial: every self time is known and they sum to the wall.
    """
    return _nested(
        _span(
            "run",
            0.0,
            10.0,
            children=[
                _span("module1", 0.0, 2.0),
                _span(
                    "module2",
                    2.0,
                    5.0,
                    children=[_span("eigensolve", 2.5, 4.0)],
                ),
                _span("module3", 7.0, 3.0),
            ],
        )
    )


# ----------------------------------------------------------------------
# critical path + self time on a known tree
class TestSerialAnalysis:
    def test_critical_path_is_longest_child_chain(self):
        report = analyze_trace(_serial_pipeline())
        names = [entry["name"] for entry in report.critical_path]
        assert names == ["run", "module2", "eigensolve"]
        assert [entry["depth"] for entry in report.critical_path] == [0, 1, 2]

    def test_self_times_sum_to_wall(self):
        report = analyze_trace(_serial_pipeline())
        self_by_name = {s["name"]: s["self_s"] for s in report.stages}
        assert self_by_name["run"] == pytest.approx(0.0)
        assert self_by_name["module1"] == pytest.approx(2.0)
        assert self_by_name["module2"] == pytest.approx(1.0)  # 5 - 4
        assert self_by_name["eigensolve"] == pytest.approx(4.0)
        assert self_by_name["module3"] == pytest.approx(3.0)
        assert report.wall_s == pytest.approx(10.0)
        assert report.coverage == pytest.approx(1.0)

    def test_targets_ranked_by_self_time(self):
        report = analyze_trace(_serial_pipeline())
        names = [t["name"] for t in report.targets]
        assert names[0] == "eigensolve"
        assert names[1] == "module3"
        assert [t["rank"] for t in report.targets] == list(
            range(1, len(names) + 1)
        )
        assert "on the critical path" in report.targets[0]["reasons"]

    def test_serial_trace_has_no_parallel_regions(self):
        report = analyze_trace(_serial_pipeline())
        assert report.parallel == []
        assert report.amdahl["serial_fraction"] == pytest.approx(1.0)
        assert report.amdahl["ceiling"] == pytest.approx(1.0)

    def test_top_truncates_targets(self):
        report = analyze_trace(_serial_pipeline(), top=2)
        assert len(report.targets) == 2


# ----------------------------------------------------------------------
# the three input formats agree
class TestInputFormats:
    def test_nested_vs_chrome_identical(self):
        nested = _serial_pipeline()
        chrome = {
            "traceEvents": _chrome_events(nested["spans"][0]),
            "displayTimeUnit": "ms",
        }
        from_nested = analyze_trace(nested)
        from_chrome = analyze_trace(chrome)
        assert [e["name"] for e in from_nested.critical_path] == [
            e["name"] for e in from_chrome.critical_path
        ]
        nested_self = {s["name"]: s["self_s"] for s in from_nested.stages}
        chrome_self = {s["name"]: s["self_s"] for s in from_chrome.stages}
        assert set(nested_self) == set(chrome_self)
        for name in nested_self:
            assert nested_self[name] == pytest.approx(chrome_self[name])

    def test_bare_event_list_accepted(self):
        events = _chrome_events(_serial_pipeline()["spans"][0])
        report = analyze_trace(events)
        assert report.n_spans == 5

    def test_live_tracer_accepted(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("stage_a"):
                pass
            with tracer.span("stage_b"):
                pass
        report = analyze_trace(tracer)
        assert report.critical_path[0]["name"] == "run"
        assert {s["name"] for s in report.stages} == {
            "run",
            "stage_a",
            "stage_b",
        }

    def test_unrecognised_input_raises(self):
        with pytest.raises(DataError):
            analyze_trace({"neither": "format"})
        with pytest.raises(DataError):
            analyze_trace({"spans": []})  # no spans at all

    def test_zero_extent_trace_raises(self):
        with pytest.raises(DataError):
            analyze_trace(_nested(_span("instant", 0.0, 0.0)))


# ----------------------------------------------------------------------
# parallel slack
class TestParallelRegions:
    def test_overlapping_children_form_a_region(self):
        trace = _nested(
            _span(
                "run",
                0.0,
                10.0,
                children=[
                    _span(
                        "parallel_map",
                        2.0,
                        6.0,
                        children=[
                            _span("shard", 2.0, 6.0),
                            _span("shard", 2.0, 6.0),
                        ],
                    )
                ],
            )
        )
        report = analyze_trace(trace)
        assert len(report.parallel) == 1
        region = report.parallel[0]
        assert region["region"] == "parallel_map"
        assert region["n_lanes"] == 2
        assert region["achieved_speedup"] == pytest.approx(2.0)
        assert region["ideal_speedup"] == pytest.approx(2.0)
        assert region["efficiency"] == pytest.approx(1.0)
        # window [2, 8] of a 10s wall -> 40% serial, ceiling 2.5x
        assert report.amdahl["serial_fraction"] == pytest.approx(0.4)
        assert report.amdahl["ceiling"] == pytest.approx(2.5)

    def test_back_to_back_children_are_not_parallel(self):
        trace = _nested(
            _span(
                "run",
                0.0,
                4.0,
                children=[_span("a", 0.0, 2.0), _span("b", 2.0, 2.0)],
            )
        )
        assert analyze_trace(trace).parallel == []

    def test_detached_root_pairs_with_host(self):
        # a worker-thread lane recorded as a separate root overlaps
        # the main run: it must surface as a 2-lane region
        trace = _nested(
            _span("run", 0.0, 10.0),
            _span("worker:loader", 3.0, 4.0),
        )
        report = analyze_trace(trace)
        assert len(report.parallel) == 1
        assert report.parallel[0]["n_lanes"] == 2
        assert report.parallel[0]["region"] == "run"
        # busy = 10 + 4 over a 10s window
        assert report.parallel[0]["achieved_speedup"] == pytest.approx(1.4)

    def test_parallel_efficiency_feeds_target_reasons(self):
        trace = _nested(
            _span(
                "run",
                0.0,
                10.0,
                children=[
                    _span(
                        "mine",
                        0.0,
                        8.0,
                        children=[
                            _span("shard", 0.0, 8.0),
                            _span("shard", 0.0, 4.0),
                        ],
                    )
                ],
            )
        )
        report = analyze_trace(trace)
        mine = next(t for t in report.targets if t["name"] == "mine")
        assert any("parallel efficiency" in r for r in mine["reasons"])


# ----------------------------------------------------------------------
# convergence harvest + unconverged annotations
class TestConvergenceHarvest:
    def test_traces_harvested_with_host_span(self):
        conv = ConvergenceTrace(
            "kmeans_1d", series={"shift": [1.0, 0.1]}, converged=True
        )
        trace = _nested(
            _span(
                "run",
                0.0,
                5.0,
                children=[
                    _span(
                        "kappa_scan",
                        0.0,
                        4.0,
                        attrs={"convergence": [conv.to_dict()]},
                    )
                ],
            )
        )
        report = analyze_trace(trace)
        assert len(report.convergence) == 1
        assert report.convergence[0]["span"] == "kappa_scan"
        assert report.convergence[0]["trace"]["solver"] == "kmeans_1d"

    def test_unconverged_solver_flags_target(self):
        conv = ConvergenceTrace(
            "lanczos", series={"beta": [0.5, 0.4]}, converged=False
        )
        trace = _nested(
            _span(
                "run",
                0.0,
                5.0,
                children=[
                    _span(
                        "eigensolve",
                        0.0,
                        4.0,
                        attrs={"convergence": [conv.to_dict()]},
                    )
                ],
            )
        )
        report = analyze_trace(trace)
        eig = next(t for t in report.targets if t["name"] == "eigensolve")
        assert any(
            r.startswith("unconverged") and "lanczos" in r
            for r in eig["reasons"]
        )

    def test_span_level_converged_attr_flags_target(self):
        trace = _nested(
            _span(
                "run",
                0.0,
                5.0,
                children=[
                    _span(
                        "eigensolve",
                        0.0,
                        4.0,
                        attrs={"solver": "arpack", "converged": False},
                    )
                ],
            )
        )
        report = analyze_trace(trace)
        eig = next(t for t in report.targets if t["name"] == "eigensolve")
        assert any("arpack" in r for r in eig["reasons"])


# ----------------------------------------------------------------------
# serialization + validation
class TestReportDocument:
    def test_round_trip_identity(self):
        report = analyze_trace(_serial_pipeline())
        through = json.loads(json.dumps(report.to_dict()))
        rebuilt = AnalysisReport.from_dict(through)
        assert rebuilt.to_dict() == report.to_dict()

    def test_validate_accepts_real_report(self):
        payload = analyze_trace(_serial_pipeline()).to_dict()
        assert validate_analysis(payload) is payload

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("stages"),
            lambda p: p.update(schema_version=99),
            lambda p: p.update(wall_s=0.0),
            lambda p: p.update(n_spans=0),
            lambda p: p.update(stages=[]),
            lambda p: p.update(critical_path=[]),
            lambda p: p["critical_path"][0].update(depth=5),
            lambda p: p["targets"][0].update(rank=7),
            lambda p: p["targets"][0].update(reasons="not-a-list"),
            lambda p: p["stages"][0].update(count=0),
            lambda p: p["stages"][0].pop("on_critical_path"),
            lambda p: p.update(amdahl={"serial_fraction": 2.0}),
            lambda p: p.update(
                parallel=[{"region": "x", "n_lanes": 1}]
            ),
            lambda p: p.update(
                convergence=[{"span": "x", "trace": {"schema_version": 9}}]
            ),
        ],
    )
    def test_validate_rejects_mutations(self, mutate):
        payload = analyze_trace(_serial_pipeline()).to_dict()
        mutate(payload)
        with pytest.raises(DataError):
            validate_analysis(payload)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(DataError):
            validate_analysis([1, 2, 3])

    def test_render_mentions_path_and_targets(self):
        report = analyze_trace(_serial_pipeline())
        text = report.render()
        assert "critical path" in text
        assert "eigensolve" in text
        assert "optimization targets" in text

    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_serial_chain_round_trips_and_covers(self, durations):
        # a run with N back-to-back children: coverage must be ~1 and
        # the document must survive JSON + from_dict exactly
        children, clock = [], 0.0
        for i, dur in enumerate(durations):
            children.append(_span(f"stage_{i}", clock, dur))
            clock += dur
        trace = _nested(_span("run", 0.0, clock, children=children))
        report = analyze_trace(trace)
        assert report.coverage == pytest.approx(1.0, rel=1e-6)
        through = json.loads(json.dumps(report.to_dict()))
        assert AnalysisReport.from_dict(through).to_dict() == report.to_dict()


# ----------------------------------------------------------------------
# CLI surface
class TestCli:
    def _write(self, tmp_path, doc, name="trace.json"):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_analyze_human_output(self, tmp_path, capsys):
        path = self._write(tmp_path, _serial_pipeline())
        assert main(["obs", "analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "eigensolve" in out

    def test_analyze_json_validates(self, tmp_path, capsys):
        chrome = {
            "traceEvents": _chrome_events(_serial_pipeline()["spans"][0])
        }
        path = self._write(tmp_path, chrome)
        assert main(["obs", "analyze", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_analysis(payload)
        assert payload["schema_version"] == ANALYSIS_SCHEMA_VERSION

    def test_analyze_missing_file_exits_1(self, tmp_path):
        assert main(["obs", "analyze", str(tmp_path / "absent.json")]) == 1

    def test_analyze_bad_document_exits_1(self, tmp_path):
        path = self._write(tmp_path, {"neither": "format"})
        assert main(["obs", "analyze", str(path)]) == 1
