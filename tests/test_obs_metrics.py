"""Tests for repro.obs.metrics — registry, ambient helpers, histograms."""

import threading

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    current_registry,
    incr,
    metrics_enabled,
    observe,
    set_gauge,
    use_registry,
)


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("scans")
        reg.inc("scans", 4)
        assert reg.counter("scans") == 5.0
        assert reg.counter("missing") == 0.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("kappa", 3)
        reg.set_gauge("kappa", 7)
        assert reg.gauge("kappa") == 7.0
        assert reg.gauge("missing") is None

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("work_s", v)
        hist = reg.histogram("work_s")
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 2)
        reg.observe("c", 0.5)
        snap = reg.to_dict()
        assert snap["counters"] == {"a": 1.0}
        assert snap["gauges"] == {"b": 2.0}
        assert snap["histograms"]["c"]["count"] == 1
        assert len(reg) == 3

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for __ in range(1000):
                reg.inc("hits")

        threads = [threading.Thread(target=work) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits") == 4000.0


class TestHistogramBuckets:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        hist.observe(0.75)   # 2^0 bucket (0.5 < v <= 1)
        hist.observe(3.0)    # 2^2 bucket (2 < v <= 4)
        hist.observe(0.0)    # non-positive bucket
        assert hist.buckets["2^0"] == 1
        assert hist.buckets["2^2"] == 1
        assert hist.buckets["<=0"] == 1

    def test_empty_histogram_dict(self):
        d = Histogram().to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        assert d["mean"] == 0.0


class TestAmbientHelpers:
    def test_disabled_by_default(self):
        assert current_registry() is None
        assert not metrics_enabled()
        # all helpers are silent no-ops without a registry
        incr("nothing")
        set_gauge("nothing", 1)
        observe("nothing", 1)

    def test_use_registry_scopes(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_registry() is reg
            assert metrics_enabled()
            incr("hits", 2)
            set_gauge("level", 9)
            observe("dt", 0.1)
        assert current_registry() is None
        assert reg.counter("hits") == 2.0
        assert reg.gauge("level") == 9.0
        assert reg.histogram("dt").count == 1

    def test_nested_registries_restore_outer(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                incr("x")
            incr("x")
        assert inner.counter("x") == 1.0
        assert outer.counter("x") == 1.0


class TestInstrumentedAlgorithms:
    """The algorithm layers record facts only when a registry is active."""

    def test_kmeans_records_iterations(self):
        import numpy as np

        from repro.clustering.kmeans import kmeans_1d

        reg = MetricsRegistry()
        values = np.random.default_rng(0).normal(size=200)
        with use_registry(reg):
            kmeans_1d(values, 4)
        assert reg.counter("kmeans1d.fits") == 1.0
        assert reg.counter("kmeans1d.iterations") >= 1.0

    def test_kappa_scan_records_candidates(self):
        import numpy as np

        from repro.clustering.optimality import scan_kappa

        reg = MetricsRegistry()
        values = np.random.default_rng(1).gamma(2.0, 0.02, size=300)
        with use_registry(reg):
            scan_kappa(values, 8)
        assert reg.counter("kappa_scan.candidates") > 0
        assert reg.gauge("kappa_scan.best_kappa") >= 2

    def test_no_metrics_leak_without_registry(self):
        import numpy as np

        from repro.clustering.kmeans import kmeans_1d

        reg = MetricsRegistry()
        values = np.random.default_rng(2).normal(size=100)
        kmeans_1d(values, 3)  # no registry active
        assert reg.counter("kmeans1d.fits") == 0.0
