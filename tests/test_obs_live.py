"""Unit tests for the live-telemetry store (``repro.obs.live``).

TimeSeries/LiveRecorder run against an injected fake clock (no sleeps,
no threads needed for the semantics); the genealogy recorder is driven
through a real :class:`IncrementalRepartitioner` subscription so the
epoch hook is tested exactly as the serving plane wires it.
"""

import json

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.obs.live import EpochGenealogyRecorder, LiveRecorder, TimeSeries
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.incremental import IncrementalRepartitioner
from repro.traffic.profiles import hotspot_profile


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTimeSeries:
    def test_capacity_bound_drops_oldest(self):
        ts = TimeSeries("x", capacity=4)
        for i in range(10):
            ts.add(float(i), t=float(i))
        assert len(ts) == 4
        assert ts.values() == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_must_be_at_least_two(self):
        with pytest.raises(DataError):
            TimeSeries("x", capacity=1)

    def test_window_filters_by_trailing_seconds(self):
        clock = FakeClock()
        ts = TimeSeries("x", clock=clock)
        ts.add(1.0)
        clock.advance(10.0)
        ts.add(2.0)
        clock.advance(1.0)
        assert ts.values(window_s=5.0) == [2.0]
        assert ts.values(window_s=None) == [1.0, 2.0]

    def test_rate_is_counter_delta_per_second(self):
        clock = FakeClock()
        ts = TimeSeries("c", clock=clock)
        ts.add(100.0)
        clock.advance(10.0)
        ts.add(150.0)
        assert ts.rate() == pytest.approx(5.0)

    def test_rate_clamps_counter_resets_to_zero(self):
        clock = FakeClock()
        ts = TimeSeries("c", clock=clock)
        ts.add(100.0)
        clock.advance(10.0)
        ts.add(3.0)  # process restarted
        assert ts.rate() == 0.0

    def test_rate_needs_two_samples(self):
        ts = TimeSeries("c")
        assert ts.rate() == 0.0
        ts.add(1.0)
        assert ts.rate() == 0.0

    def test_aggregate_quantiles_bracket_the_data(self):
        ts = TimeSeries("lat")
        for v in (1.0, 2.0, 2.0, 3.0, 100.0):
            ts.add(v, t=0.0)
        agg = ts.aggregate()
        assert agg["count"] == 5
        assert agg["min"] == 1.0
        assert agg["max"] == 100.0
        assert agg["last"] == 100.0
        assert 1.0 <= agg["p50"] <= 4.0
        assert agg["p99"] <= 100.0
        assert agg["p50"] <= agg["p99"]

    def test_empty_aggregate(self):
        assert TimeSeries("x").aggregate() == {"count": 0}

    def test_to_dict_round_trips_through_json(self):
        ts = TimeSeries("x")
        ts.add(1.5, t=10.0)
        doc = json.loads(json.dumps(ts.to_dict()))
        assert doc["name"] == "x"
        assert doc["n_samples"] == 1
        assert doc["samples"] == [[10.0, 1.5]]


class TestLiveRecorder:
    def test_pull_sources_sampled_in_one_tick(self):
        clock = FakeClock()
        recorder = LiveRecorder(hz=1.0, clock=clock)
        values = {"a": 1.0, "b": 2.0}
        recorder.add_source("a", lambda: values["a"])
        recorder.add_source("b", lambda: values["b"])
        recorder.sample_once()
        values["a"] = 5.0
        clock.advance(1.0)
        recorder.sample_once()
        assert recorder.series("a").values() == [1.0, 5.0]
        assert recorder.series("b").values() == [2.0, 2.0]

    def test_failing_source_skips_tick_but_others_survive(self):
        recorder = LiveRecorder()

        def boom():
            raise RuntimeError("sensor on fire")

        recorder.add_source("bad", boom)
        recorder.add_source("good", lambda: 1.0)
        recorder.sample_once()
        assert recorder.series("bad").values() == []
        assert recorder.series("good").values() == [1.0]

    def test_none_source_value_skips_tick(self):
        recorder = LiveRecorder()
        recorder.add_source("absent", lambda: None)
        recorder.sample_once()
        assert recorder.series("absent").values() == []

    def test_watch_registry_reads_gauges_by_name(self):
        registry = MetricsRegistry()
        registry.set_gauge("serve.qps", 123.0)
        recorder = LiveRecorder()
        recorder.watch_registry(registry, ("serve.qps",))
        recorder.sample_once()
        registry.set_gauge("serve.qps", 456.0)
        recorder.sample_once()
        assert recorder.series("serve.qps").values() == [123.0, 456.0]

    def test_push_record_and_series_names(self):
        recorder = LiveRecorder()
        recorder.record("epoch.churn", 17.0)
        recorder.add_source("serve.qps", lambda: 1.0)
        assert recorder.series_names == ["epoch.churn", "serve.qps"]

    def test_invalid_hz_rejected(self):
        with pytest.raises(DataError):
            LiveRecorder(hz=0.0)

    def test_sampler_thread_collects_and_stops(self):
        recorder = LiveRecorder(hz=200.0)
        recorder.add_source("x", lambda: 1.0)
        import time as _time

        with recorder:
            deadline = _time.monotonic() + 5.0
            while not recorder.series("x").values():
                assert _time.monotonic() < deadline, "sampler never ticked"
                _time.sleep(0.005)
        n_after_stop = len(recorder.series("x"))
        _time.sleep(0.05)
        assert len(recorder.series("x")) == n_after_stop

    def test_write_dumps_valid_json(self, tmp_path):
        recorder = LiveRecorder()
        recorder.record("a", 1.0, t=0.0)
        path = recorder.write(tmp_path / "live.json")
        doc = json.loads(path.read_text())
        assert doc["series"]["a"]["n_samples"] == 1
        assert doc["hz"] == 1.0


@pytest.fixture(scope="module")
def incremental_setup():
    network = grid_network(8, 8, two_way=True)
    graph = build_road_graph(network)
    base = hotspot_profile(network, n_hotspots=2, noise=0.0, seed=0)
    return graph, base


class TestEpochGenealogyRecorder:
    def test_bootstrap_plus_updates_recorded(self, incremental_setup):
        graph, base = incremental_setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.15, seed=0)
        recorder = LiveRecorder()
        genealogy = EpochGenealogyRecorder(recorder)
        genealogy.attach(inc)

        inc.bootstrap(base)
        rng = np.random.default_rng(0)
        densities = base
        for __ in range(3):
            densities = densities * rng.uniform(0.5, 2.0, size=densities.shape)
            inc.update(densities)

        doc = genealogy.to_dict()
        assert doc["n_epochs"] == 4  # bootstrap + 3 updates
        first, *rest = doc["epochs"]
        assert first["churn"] == 0  # bootstrap has no previous epoch
        assert first["n_regions"] >= 2
        assert "ans" in first and "gdbi" in first
        for entry in rest:
            assert entry["update_s"] > 0
            assert "lineage" in entry
            counts = entry["lineage"]
            assert set(counts) >= {"continuations", "splits", "merges"}
        # the series feed the live recorder
        assert recorder.series("epoch.churn").values()[0] == 0.0
        assert len(recorder.series("epoch.n_regions")) == 4
        assert len(recorder.series("epoch.continuations")) == 3

    def test_unsubscribe_stops_recording(self, incremental_setup):
        graph, base = incremental_setup
        inc = IncrementalRepartitioner(graph, k=3, staleness_threshold=0.2, seed=0)
        genealogy = EpochGenealogyRecorder(LiveRecorder())
        unsubscribe = genealogy.attach(inc)
        inc.bootstrap(base)
        unsubscribe()
        inc.update(base * 2.0)
        assert genealogy.to_dict()["n_epochs"] == 1

    def test_history_bound(self):
        genealogy = EpochGenealogyRecorder(LiveRecorder(), quality=False, history=3)
        labels = np.zeros(10, dtype=int)
        for __ in range(7):
            genealogy.on_epoch(labels, np.ones(10), None)
        doc = genealogy.to_dict()
        assert doc["n_epochs"] == 7
        assert len(doc["epochs"]) == 3

    def test_invalid_history_rejected(self):
        with pytest.raises(DataError):
            EpochGenealogyRecorder(LiveRecorder(), history=0)


class TestSparkline:
    def test_render_sparkline_is_svg_with_polyline(self):
        from repro.viz.svg import render_sparkline

        svg = render_sparkline([1.0, 3.0, 2.0, 5.0], title="qps")
        assert svg.startswith("<svg")
        assert "<polyline" in svg
        assert "qps" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        from repro.viz.svg import render_sparkline

        svg = render_sparkline([2.0, 2.0, 2.0])
        assert "<polyline" in svg

    def test_empty_series_rejected(self):
        from repro.viz.svg import render_sparkline

        with pytest.raises(DataError):
            render_sparkline([])


class TestReportLivePane:
    def _live_payload(self):
        recorder = LiveRecorder()
        for i in range(5):
            recorder.record("serve.qps", 100.0 + i, t=float(i))
        return recorder.to_dict()

    def test_flight_recorder_html_renders_live_section(self):
        from repro.obs.report import flight_recorder_html

        html = flight_recorder_html(live=self._live_payload())
        assert "Live telemetry" in html
        assert "serve.qps" in html
        assert "<polyline" in html

    def test_write_report_accepts_live_path(self, tmp_path):
        from repro.obs.report import write_report

        live_path = tmp_path / "live.json"
        live_path.write_text(json.dumps(self._live_payload()))
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(
            json.dumps({"counters": {}, "gauges": {}, "histograms": {}})
        )
        out = write_report(
            None, metrics_path, tmp_path / "report.html", live_path=live_path
        )
        doc = out.read_text(encoding="utf-8")
        assert "Live telemetry" in doc
        assert "serve.qps" in doc
