"""Tests for repro.obs.scaling: power-law fits over benchmark history.

Pins the log-log fitter (exact recovery of synthetic power laws, the
two-distinct-sizes floor), the prefix-scoped point harvest from
flattened history values, the report document with superlinear flags
and forecasts, the ``n_segments``/``n_supernodes`` size stamps that
``history_record`` lifts onto every record, and the ``repro obs
scaling`` CLI including its exit-2 nothing-to-fit contract.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.exceptions import DataError
from repro.obs.bench import history_record
from repro.obs.scaling import (
    DEFAULT_FORECAST_N,
    SCALING_SCHEMA_VERSION,
    SUPERLINEAR_EXPONENT,
    collect_points,
    fit_power_law,
    fit_scaling,
    fit_scaling_from_history,
    render_scaling,
)


def _record(values):
    """Minimal well-formed history record around a values dict."""
    return {"bench": "synthetic", "values": dict(values)}


# ----------------------------------------------------------------------
# the fitter
class TestFitPowerLaw:
    def test_exact_recovery(self):
        ns = [100.0, 1_000.0, 10_000.0, 52_440.0]
        ts = [2e-6 * n**1.5 for n in ns]
        a, b, r2 = fit_power_law(ns, ts)
        assert a == pytest.approx(2e-6, rel=1e-9)
        assert b == pytest.approx(1.5, rel=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_single_size_raises(self):
        with pytest.raises(DataError):
            fit_power_law([500.0, 500.0], [1.0, 1.1])

    def test_nonpositive_points_dropped(self):
        # zero-time and n<=1 points must not poison the log transform
        a, b, __ = fit_power_law([1.0, 0.0, 100.0, 1_000.0], [9.9, 0.0, 1.0, 10.0])
        assert b == pytest.approx(1.0, rel=1e-9)
        assert a == pytest.approx(0.01, rel=1e-9)

    def test_all_unusable_raises(self):
        with pytest.raises(DataError):
            fit_power_law([0.0, 1.0], [1.0, 1.0])

    @given(
        a=st.floats(min_value=1e-8, max_value=10.0, allow_nan=False),
        b=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_any_power_law(self, a, b):
        ns = [10.0, 100.0, 1_000.0]
        got_a, got_b, r2 = fit_power_law(ns, [a * n**b for n in ns])
        assert got_b == pytest.approx(b, rel=1e-6)
        assert got_a == pytest.approx(a, rel=1e-5)
        assert r2 == pytest.approx(1.0)


# ----------------------------------------------------------------------
# point harvesting
class TestCollectPoints:
    def test_prefix_scoping(self):
        # D1.* sized by D1.segments, M1.* by M1.segments, bare leaves
        # by the top-level n_segments
        points = collect_points(
            [
                _record(
                    {
                        "D1.segments": 100,
                        "D1.module1": 1.0,
                        "M1.segments": 1_000,
                        "M1.module1": 5.0,
                        "n_segments": 1_000,
                        "total": 6.5,
                    }
                )
            ]
        )
        assert points["module1"] == [(100.0, 1.0), (1000.0, 5.0)]
        assert points["total"] == [(1000.0, 6.5)]

    def test_size_leaves_never_become_stages(self):
        points = collect_points(
            [_record({"n_segments": 500, "D1.segments": 100, "D1.total": 1.0})]
        )
        assert all("segments" not in stage for stage in points)

    def test_non_time_values_excluded(self):
        points = collect_points(
            [
                _record(
                    {
                        "n_segments": 500,
                        "total": 2.0,
                        "peak_bytes": 1e9,  # memory, wrong axis
                        "speedup": 3.0,  # higher-is-better, not a time
                        "n_supernodes": 40,  # a size, not a measurement
                    }
                )
            ]
        )
        assert set(points) == {"total"}

    def test_records_without_sizes_skipped(self):
        assert collect_points([_record({"total": 2.0}), {"no": "values"}]) == {}

    def test_points_accumulate_across_records(self):
        records = [
            _record({"n_segments": 100, "total": 1.0}),
            _record({"n_segments": 1_000, "total": 10.0}),
        ]
        assert collect_points(records)["total"] == [(100.0, 1.0), (1000.0, 10.0)]


# ----------------------------------------------------------------------
# the report
class TestFitScaling:
    def _multi_size_records(self, b=1.5):
        return [
            _record(
                {
                    f"{name}.segments": n,
                    f"{name}.module2": 1e-5 * n**b,
                    f"{name}.module1": 1e-5 * n,
                }
            )
            for name, n in [("D1", 100), ("M1", 1_000), ("M2", 10_000)]
        ]

    def test_superlinear_flag_and_forecast(self):
        report = fit_scaling(self._multi_size_records(b=1.5), forecast_n=100_000)
        assert report["schema_version"] == SCALING_SCHEMA_VERSION
        by_stage = {s["stage"]: s for s in report["stages"]}
        assert by_stage["module2"]["superlinear"] is True
        assert by_stage["module2"]["b"] == pytest.approx(1.5, rel=1e-6)
        assert by_stage["module2"]["forecast_s"] == pytest.approx(
            1e-5 * 100_000**1.5, rel=1e-6
        )
        assert by_stage["module1"]["superlinear"] is False
        assert by_stage["module1"]["b"] == pytest.approx(1.0, rel=1e-6)
        # superlinear stage dominates the forecast -> sorted first
        assert report["stages"][0]["stage"] == "module2"

    def test_single_size_stage_lands_in_skipped(self):
        records = self._multi_size_records() + [
            _record({"n_segments": 500, "lonely_stage_s": 1.0})
        ]
        report = fit_scaling(records)
        assert {s["stage"] for s in report["skipped"]} == {"lonely_stage_s"}

    def test_bad_forecast_n_raises(self):
        with pytest.raises(DataError):
            fit_scaling(self._multi_size_records(), forecast_n=1)

    def test_render_mentions_stages_and_flags(self):
        text = render_scaling(fit_scaling(self._multi_size_records(b=1.8)))
        assert "module2" in text
        assert "SUPERLINEAR" in text
        assert "100,000" in text  # default forecast size
        assert DEFAULT_FORECAST_N == 100_000
        assert SUPERLINEAR_EXPONENT == pytest.approx(1.1)


# ----------------------------------------------------------------------
# history_record size stamps (the satellite this module consumes)
class TestHistorySizeStamps:
    def test_exact_top_level_key_wins(self):
        record = history_record(
            "t", {"n_segments": 52_440, "D1": {"segments": 100}}
        )
        assert record["n_segments"] == 52_440

    def test_max_over_dotted_leaves(self):
        record = history_record(
            "t",
            {
                "D1": {"segments": 100, "n_supernodes": 9},
                "M1": {"segments": 1_000, "n_supernodes": 80},
            },
        )
        assert record["n_segments"] == 1_000
        assert record["n_supernodes"] == 80

    def test_no_sizes_no_stamp(self):
        record = history_record("t", {"total": 1.0})
        assert "n_segments" not in record
        assert "n_supernodes" not in record

    def test_stamped_record_feeds_the_fitter(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with open(path, "w") as fh:
            for n in (100, 1_000, 10_000):
                record = history_record(
                    "table3", {"n_segments": n, "total": 1e-4 * n**1.2}
                )
                fh.write(json.dumps(record) + "\n")
        report = fit_scaling_from_history(path, bench="table3")
        assert report["stages"][0]["stage"] == "total"
        assert report["stages"][0]["b"] == pytest.approx(1.2, rel=1e-6)


# ----------------------------------------------------------------------
# CLI surface
class TestCli:
    def _history(self, tmp_path, records):
        path = tmp_path / "history.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_scaling_json_output(self, tmp_path, capsys):
        path = self._history(
            tmp_path,
            [
                _record({"n_segments": 100, "total": 0.5})
                | {"bench": "table3"},
                _record({"n_segments": 10_000, "total": 80.0})
                | {"bench": "table3"},
            ],
        )
        code = main(
            ["obs", "scaling", "--history", str(path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCALING_SCHEMA_VERSION
        assert payload["stages"][0]["stage"] == "total"

    def test_scaling_human_output_and_forecast_n(self, tmp_path, capsys):
        path = self._history(
            tmp_path,
            [
                _record({"n_segments": 100, "total": 0.5}),
                _record({"n_segments": 10_000, "total": 80.0}),
            ],
        )
        code = main(
            [
                "obs",
                "scaling",
                "--history",
                str(path),
                "--forecast-n",
                "100000",
            ]
        )
        assert code == 0
        assert "total" in capsys.readouterr().out

    def test_scaling_exit_2_when_nothing_to_fit(self, tmp_path, capsys):
        path = self._history(
            tmp_path, [_record({"n_segments": 100, "total": 0.5})]
        )
        assert main(["obs", "scaling", "--history", str(path)]) == 2

    def test_scaling_empty_history_exit_2(self, tmp_path):
        path = self._history(tmp_path, [])
        assert main(["obs", "scaling", "--history", str(path)]) == 2
