"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        a1, __ = spawn_rngs(9, 2)
        a2, __ = spawn_rngs(9, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)
