"""Tests for Kernighan-Lin refinement."""

import numpy as np
import pytest

from repro.baselines.kernighan_lin import cut_weight, kernighan_lin_refine
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


class TestCutWeight:
    def test_bridge(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        assert cut_weight(two_cliques.adjacency, labels) == pytest.approx(1.0)

    def test_no_cut(self, two_cliques):
        assert cut_weight(two_cliques.adjacency, np.zeros(8, dtype=int)) == 0.0

    def test_weighted(self):
        g = Graph(3, edges=[(0, 1, 0.5), (1, 2, 2.0)])
        assert cut_weight(g.adjacency, [0, 0, 1]) == pytest.approx(2.0)

    def test_shape_checked(self, two_cliques):
        with pytest.raises(PartitioningError):
            cut_weight(two_cliques.adjacency, [0, 1])


class TestKernighanLinRefine:
    def test_repairs_swapped_nodes(self, two_cliques):
        """Start from the optimal split with two nodes swapped; KL must
        find its way back."""
        labels = np.array([0, 0, 0, 1, 0, 1, 1, 1])  # 3 and 4 swapped
        refined = kernighan_lin_refine(two_cliques.adjacency, labels)
        assert cut_weight(two_cliques.adjacency, refined) == pytest.approx(1.0)

    def test_never_increases_cut(self, two_cliques, rng):
        for __ in range(5):
            labels = rng.integers(0, 2, size=8)
            if labels.min() == labels.max():
                continue
            before = cut_weight(two_cliques.adjacency, labels)
            refined = kernighan_lin_refine(two_cliques.adjacency, labels)
            assert cut_weight(two_cliques.adjacency, refined) <= before + 1e-12

    def test_respects_balance(self, two_cliques):
        labels = np.array([0, 1, 1, 1, 1, 1, 1, 1])
        refined = kernighan_lin_refine(
            two_cliques.adjacency, labels, balance_tolerance=0.4
        )
        sizes = np.bincount(refined, minlength=2)
        assert sizes.min() >= 1

    def test_zero_passes_noop(self, two_cliques):
        labels = np.array([0, 1] * 4)
        refined = kernighan_lin_refine(
            two_cliques.adjacency, labels, max_passes=0
        )
        np.testing.assert_array_equal(refined, labels)

    def test_optimal_input_unchanged_cut(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        refined = kernighan_lin_refine(two_cliques.adjacency, labels)
        assert cut_weight(two_cliques.adjacency, refined) == pytest.approx(1.0)

    def test_invalid_labels_rejected(self, two_cliques):
        with pytest.raises(PartitioningError):
            kernighan_lin_refine(two_cliques.adjacency, np.full(8, 2))

    def test_invalid_params_rejected(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        with pytest.raises(PartitioningError):
            kernighan_lin_refine(two_cliques.adjacency, labels, max_passes=-1)
        with pytest.raises(PartitioningError):
            kernighan_lin_refine(
                two_cliques.adjacency, labels, balance_tolerance=0.9
            )

    def test_ring_graph(self):
        """On an even ring the optimal bisection cuts exactly 2 edges."""
        n = 12
        g = Graph(n, edges=[(i, (i + 1) % n) for i in range(n)])
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        refined = kernighan_lin_refine(g.adjacency, labels)
        assert cut_weight(g.adjacency, refined) <= 4.0  # near-optimal
