"""Failure-injection tests: degraded dependencies must not break results.

The spectral stage leans on ARPACK, which can legitimately fail to
converge; these tests force those failures and assert the documented
fallbacks produce correct eigenpairs anyway.
"""

import numpy as np
import pytest
from scipy.sparse.linalg import ArpackNoConvergence

import repro.baselines.ncut as ncut_mod
import repro.core.spectral as spectral_mod
from repro.graph.adjacency import Graph
from repro.graph.laplacian import alpha_cut_matrix, normalized_laplacian


@pytest.fixture
def ring_graph():
    n = 80
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + 9) % n, 0.5) for i in range(n)]
    return Graph(n, edges=edges)


def _failing_eigsh(*args, **kwargs):
    raise ArpackNoConvergence("injected failure", np.array([]), np.array([[]]))


class TestAlphaCutEigsolverFallback:
    def test_arpack_failure_falls_back_to_dense(
        self, ring_graph, monkeypatch
    ):
        monkeypatch.setattr(spectral_mod, "DENSE_CUTOFF", 10)
        monkeypatch.setattr(spectral_mod, "eigsh", _failing_eigsh)
        values, vectors = spectral_mod.smallest_eigenvectors(
            ring_graph.adjacency, 3
        )
        expected = np.linalg.eigvalsh(alpha_cut_matrix(ring_graph.adjacency))
        np.testing.assert_allclose(values, expected[:3], atol=1e-8)

    def test_partial_convergence_used_when_sufficient(
        self, ring_graph, monkeypatch
    ):
        """ARPACK that converged >= k pairs before failing still serves."""
        m = alpha_cut_matrix(ring_graph.adjacency)
        true_vals, true_vecs = np.linalg.eigh(m)

        def _partially_failing(*args, **kwargs):
            raise ArpackNoConvergence(
                "partial", true_vals[:4], true_vecs[:, :4]
            )

        monkeypatch.setattr(spectral_mod, "DENSE_CUTOFF", 10)
        monkeypatch.setattr(spectral_mod, "eigsh", _partially_failing)
        values, __ = spectral_mod.smallest_eigenvectors(ring_graph.adjacency, 3)
        np.testing.assert_allclose(np.sort(values), true_vals[:3], atol=1e-8)

    def test_partitioning_survives_injected_failure(
        self, ring_graph, monkeypatch
    ):
        monkeypatch.setattr(spectral_mod, "DENSE_CUTOFF", 10)
        monkeypatch.setattr(spectral_mod, "eigsh", _failing_eigsh)
        labels = spectral_mod.spectral_partition(ring_graph.adjacency, 3, seed=0)
        assert labels.shape == (ring_graph.n_nodes,)
        assert labels.max() + 1 >= 3


class TestNcutEigsolverFallback:
    def test_shift_invert_failure_falls_back(self, ring_graph, monkeypatch):
        calls = []
        real_eigsh = ncut_mod.eigsh

        def _fail_shift_invert(*args, **kwargs):
            calls.append(kwargs)
            if kwargs.get("sigma") is not None:
                raise RuntimeError("injected factorization failure")
            return real_eigsh(*args, **kwargs)

        monkeypatch.setattr(ncut_mod, "DENSE_CUTOFF", 10)
        monkeypatch.setattr(ncut_mod, "eigsh", _fail_shift_invert)
        z = ncut_mod.ncut_embedding(ring_graph.adjacency, 3)
        assert z.shape == (ring_graph.n_nodes, 3)
        assert len(calls) >= 2  # first shift-invert, then the retry

    def test_total_failure_falls_back_to_dense(self, ring_graph, monkeypatch):
        monkeypatch.setattr(ncut_mod, "DENSE_CUTOFF", 10)
        monkeypatch.setattr(ncut_mod, "eigsh", _failing_eigsh)
        z = ncut_mod.ncut_embedding(ring_graph.adjacency, 3)
        lap = normalized_laplacian(ring_graph.adjacency).toarray()
        __, vectors = np.linalg.eigh(lap)
        # rows normalised, same subspace dimension
        np.testing.assert_allclose(np.linalg.norm(z, axis=1), 1.0)
