"""Tests for the alpha-Cut objective and its matrix form."""

import numpy as np
import pytest

from repro.core.alpha_cut import (
    alpha_cut_quadratic_value,
    alpha_cut_value,
    alpha_vector,
    association_value,
    cut_value,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


@pytest.fixture
def clique_labels(two_cliques):
    return two_cliques, np.array([0, 0, 0, 0, 1, 1, 1, 1])


class TestCutAssociation:
    def test_bridge_cut(self, clique_labels):
        g, labels = clique_labels
        assert cut_value(g.adjacency, labels, 0) == pytest.approx(1.0)
        assert cut_value(g.adjacency, labels, 1) == pytest.approx(1.0)

    def test_association_counts_ordered_pairs(self, clique_labels):
        g, labels = clique_labels
        # 6 internal links, each counted twice in c^T A c
        assert association_value(g.adjacency, labels, 0) == pytest.approx(12.0)

    def test_partition_out_of_range(self, clique_labels):
        g, labels = clique_labels
        with pytest.raises(PartitioningError):
            cut_value(g.adjacency, labels, 5)


class TestAlphaVector:
    def test_sums_to_one(self, clique_labels):
        g, labels = clique_labels
        assert alpha_vector(g.adjacency, labels).sum() == pytest.approx(1.0)

    def test_symmetric_partition_equal_alphas(self, clique_labels):
        g, labels = clique_labels
        alphas = alpha_vector(g.adjacency, labels)
        assert alphas[0] == pytest.approx(alphas[1])

    def test_empty_graph(self):
        g = Graph(3)
        np.testing.assert_array_equal(
            alpha_vector(g.adjacency, [0, 0, 1]), [0.0, 0.0]
        )


class TestAlphaCutValue:
    def test_good_cut_beats_bad_cut(self, two_cliques):
        good = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        bad = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        adj = two_cliques.adjacency
        assert alpha_cut_value(adj, good) < alpha_cut_value(adj, bad)

    def test_matches_quadratic_form(self, two_cliques, rng):
        """Equation 5 with the paper's alpha vector == Equation 6."""
        adj = two_cliques.adjacency
        for __ in range(10):
            labels = rng.integers(0, 3, size=8)
            __, labels = np.unique(labels, return_inverse=True)
            assert alpha_cut_value(adj, labels) == pytest.approx(
                alpha_cut_quadratic_value(adj, labels)
            )

    def test_scalar_alpha(self, clique_labels):
        g, labels = clique_labels
        # alpha = 1: only the cut term remains
        pure_cut = alpha_cut_value(g.adjacency, labels, alpha=1.0)
        expected = sum(
            cut_value(g.adjacency, labels, i) / 4.0 for i in (0, 1)
        )
        assert pure_cut == pytest.approx(expected)

    def test_alpha_zero_is_negative_association(self, clique_labels):
        g, labels = clique_labels
        value = alpha_cut_value(g.adjacency, labels, alpha=0.0)
        expected = -sum(
            association_value(g.adjacency, labels, i) / 4.0 for i in (0, 1)
        )
        assert value == pytest.approx(expected)

    def test_explicit_alpha_vector(self, clique_labels):
        g, labels = clique_labels
        value = alpha_cut_value(g.adjacency, labels, alpha=[0.5, 0.5])
        assert value == pytest.approx(
            alpha_cut_value(g.adjacency, labels, alpha=0.5)
        )

    def test_relation_to_modularity(self, two_cliques, rng):
        """Minimising alpha-Cut == maximising modularity: the values are
        ordered oppositely across labellings."""
        from repro.baselines.modularity import modularity_value

        adj = two_cliques.adjacency
        labellings = []
        for __ in range(8):
            lab = rng.integers(0, 2, size=8)
            __, lab = np.unique(lab, return_inverse=True)
            if lab.max() == 1:
                labellings.append(lab)
        scores = [
            (alpha_cut_value(adj, lab), modularity_value(adj, lab))
            for lab in labellings
        ]
        # alpha-Cut per partition divides by |P_i|, modularity by 2m; the
        # orderings agree on equal-size partitions; check the clean case:
        good = np.array([0] * 4 + [1] * 4)
        bad = np.array([0, 1] * 4)
        assert alpha_cut_value(adj, good) < alpha_cut_value(adj, bad)
        assert modularity_value(adj, good) > modularity_value(adj, bad)

    def test_empty_partition_rejected(self, two_cliques):
        labels = np.zeros(8, dtype=int)
        labels[0] = 2  # partition 1 empty
        with pytest.raises(PartitioningError, match="empty"):
            alpha_cut_value(two_cliques.adjacency, labels)

    def test_invalid_alpha(self, clique_labels):
        g, labels = clique_labels
        with pytest.raises(PartitioningError):
            alpha_cut_value(g.adjacency, labels, alpha=1.5)
        with pytest.raises(PartitioningError):
            alpha_cut_value(g.adjacency, labels, alpha=[0.5])

    def test_labels_shape_checked(self, two_cliques):
        with pytest.raises(PartitioningError):
            alpha_cut_value(two_cliques.adjacency, [0, 1])
