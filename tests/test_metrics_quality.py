"""Tests for cost of partitioning and partition volume."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.graph.affinity import congestion_affinity
from repro.metrics.partition_quality import cost_of_partitioning, partition_volume


@pytest.fixture
def weighted_chain():
    return Graph(
        4, edges=[(0, 1, 0.9), (1, 2, 0.2), (2, 3, 0.8)], features=[0, 0, 1, 1]
    )


class TestCostVolume:
    def test_cost_is_cross_weight(self, weighted_chain):
        assert cost_of_partitioning(
            weighted_chain.adjacency, [0, 0, 1, 1]
        ) == pytest.approx(0.2)

    def test_volume_is_within_weight(self, weighted_chain):
        assert partition_volume(
            weighted_chain.adjacency, [0, 0, 1, 1]
        ) == pytest.approx(1.7)

    def test_cost_plus_volume_is_total(self, weighted_chain, rng):
        adj = weighted_chain.adjacency
        total = adj.sum() / 2.0
        for __ in range(5):
            labels = rng.integers(0, 2, size=4)
            assert cost_of_partitioning(adj, labels) + partition_volume(
                adj, labels
            ) == pytest.approx(total)

    def test_single_partition_no_cost(self, weighted_chain):
        assert cost_of_partitioning(weighted_chain.adjacency, [0] * 4) == 0.0

    def test_all_singletons_no_volume(self, weighted_chain):
        assert partition_volume(weighted_chain.adjacency, [0, 1, 2, 3]) == 0.0

    def test_good_cut_minimises_cost(self, weighted_chain):
        adj = weighted_chain.adjacency
        assert cost_of_partitioning(adj, [0, 0, 1, 1]) < cost_of_partitioning(
            adj, [0, 1, 1, 0]
        )

    def test_with_congestion_affinity(self, weighted_chain):
        aff = congestion_affinity(weighted_chain)
        cost = cost_of_partitioning(aff, [0, 0, 1, 1])
        vol = partition_volume(aff, [0, 0, 1, 1])
        assert cost >= 0 and vol >= 0

    def test_shape_checked(self, weighted_chain):
        with pytest.raises(PartitioningError):
            cost_of_partitioning(weighted_chain.adjacency, [0, 1])
