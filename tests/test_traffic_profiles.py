"""Tests for synthetic congestion profiles."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.traffic.profiles import hotspot_profile, peak_hour_series


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing=100.0, two_way=True)


class TestHotspotProfile:
    def test_shape_and_nonnegative(self, network):
        dens = hotspot_profile(network, seed=0)
        assert dens.shape == (network.n_segments,)
        assert (dens >= 0).all()

    def test_reproducible(self, network):
        a = hotspot_profile(network, seed=9)
        b = hotspot_profile(network, seed=9)
        np.testing.assert_allclose(a, b)

    def test_centre_more_congested_than_edge(self, network):
        dens = hotspot_profile(network, n_hotspots=1, noise=0.0, seed=0)
        mids = [network.segment_midpoint(i) for i in range(network.n_segments)]
        centre = np.array([(m.x - 350) ** 2 + (m.y - 350) ** 2 for m in mids])
        inner = dens[centre < 150**2].mean()
        outer = dens[centre > 350**2].mean()
        assert inner > outer

    def test_explicit_hotspots(self, network):
        dens = hotspot_profile(
            network, hotspots=[(0.0, 0.0)], noise=0.0, seed=0
        )
        mids = [network.segment_midpoint(i) for i in range(network.n_segments)]
        nearest = int(np.argmin([m.x**2 + m.y**2 for m in mids]))
        assert dens[nearest] == dens.max()

    def test_background_floor(self, network):
        dens = hotspot_profile(
            network, background=0.003, noise=0.0, decay=0.05, seed=0
        )
        assert dens.min() >= 0.003 - 1e-12

    def test_invalid_args(self, network):
        with pytest.raises(DataError):
            hotspot_profile(network, n_hotspots=0)
        with pytest.raises(DataError):
            hotspot_profile(network, peak_density=0.0)
        with pytest.raises(DataError):
            hotspot_profile(network, decay=0.0)
        with pytest.raises(DataError):
            hotspot_profile(network, noise=-0.1)
        with pytest.raises(DataError):
            hotspot_profile(network, hotspots=[(1.0,)])


class TestPeakHourSeries:
    def test_shape(self, network):
        series = peak_hour_series(network, n_steps=20, seed=0)
        assert series.shape == (20, network.n_segments)

    def test_peak_at_requested_step(self, network):
        series = peak_hour_series(
            network, n_steps=50, peak_step=30, noise=0.0, seed=0
        )
        totals = series.sum(axis=1)
        assert int(np.argmax(totals)) == 30

    def test_spatial_pattern_constant_over_time(self, network):
        series = peak_hour_series(network, n_steps=10, noise=0.0, seed=0)
        # every snapshot is a scalar multiple of the first
        base = series[0] / series[0].sum()
        for t in range(1, 10):
            np.testing.assert_allclose(series[t] / series[t].sum(), base)

    def test_invalid_args(self, network):
        with pytest.raises(DataError):
            peak_hour_series(network, n_steps=0)
        with pytest.raises(DataError):
            peak_hour_series(network, n_steps=10, peak_step=10)
