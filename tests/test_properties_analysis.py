"""Property-based tests for the analysis and control layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.consensus import (
    coassociation_matrix,
    consensus_partition,
    stability_map,
)
from repro.analysis.flows import internal_trip_share, region_od_matrix
from repro.analysis.mfd import RegionMFD
from repro.graph.adjacency import Graph
from repro.traffic.mntg import Trajectory


def _chain(n):
    return Graph(n, edges=[(i, i + 1) for i in range(n - 1)])


@st.composite
def chain_with_labelings(draw):
    n = draw(st.integers(4, 16))
    t = draw(st.integers(1, 5))
    labelings = [
        np.unique(
            draw(st.lists(st.integers(0, 3), min_size=n, max_size=n)),
            return_inverse=True,
        )[1]
        for __ in range(t)
    ]
    return _chain(n), labelings


class TestConsensusProperties:
    @given(data=chain_with_labelings())
    @settings(max_examples=40, deadline=None)
    def test_coassociation_in_unit_interval(self, data):
        graph, labelings = data
        coassoc = coassociation_matrix(graph.adjacency, labelings)
        if coassoc.nnz:
            assert coassoc.data.min() >= 0.0
            assert coassoc.data.max() <= 1.0

    @given(data=chain_with_labelings())
    @settings(max_examples=40, deadline=None)
    def test_consensus_covers_all_nodes(self, data):
        graph, labelings = data
        consensus = consensus_partition(graph.adjacency, labelings)
        assert consensus.shape == (graph.n_nodes,)
        k = int(consensus.max()) + 1
        assert set(consensus.tolist()) == set(range(k))

    @given(data=chain_with_labelings())
    @settings(max_examples=40, deadline=None)
    def test_identical_labelings_reproduce_partition(self, data):
        graph, labelings = data
        lab = labelings[0]
        consensus = consensus_partition(graph.adjacency, [lab, lab, lab])
        # the consensus refines the original into connected pieces:
        # no consensus region spans two original partitions
        for region in range(int(consensus.max()) + 1):
            members = np.flatnonzero(consensus == region)
            assert len(set(lab[members].tolist())) == 1

    @given(data=chain_with_labelings())
    @settings(max_examples=40, deadline=None)
    def test_stability_in_unit_interval(self, data):
        graph, labelings = data
        stability = stability_map(graph.adjacency, labelings)
        assert (stability >= 0).all() and (stability <= 1 + 1e-12).all()


@st.composite
def trips_and_labels(draw):
    n_segments = draw(st.integers(4, 12))
    labels = np.unique(
        draw(st.lists(st.integers(0, 2), min_size=n_segments, max_size=n_segments)),
        return_inverse=True,
    )[1]
    n_trips = draw(st.integers(0, 10))
    trips = []
    for i in range(n_trips):
        length = draw(st.integers(1, 5))
        route = draw(
            st.lists(
                st.integers(0, n_segments - 1), min_size=length, max_size=length
            )
        )
        trips.append(Trajectory(i, 0, route))
    return trips, labels


class TestFlowProperties:
    @given(data=trips_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_od_total_equals_routed_trips(self, data):
        trips, labels = data
        od = region_od_matrix(trips, labels)
        routed = sum(1 for t in trips if t.segments)
        assert od.sum() == routed

    @given(data=trips_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_internal_share_bounds(self, data):
        trips, labels = data
        shares = internal_trip_share(trips, labels)
        assert (shares >= 0).all() and (shares <= 1).all()


class TestMFDProperties:
    @given(
        acc=st.lists(st.floats(0, 100, allow_nan=False), min_size=0, max_size=40),
        flow=st.lists(st.floats(0, 50, allow_nan=False), min_size=0, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_tightness_nonnegative_and_finite(self, acc, flow):
        m = min(len(acc), len(flow))
        mfd = RegionMFD(0, np.asarray(acc[:m]), np.asarray(flow[:m]))
        value = mfd.tightness()
        assert np.isfinite(value) and value >= 0.0

    @given(
        acc=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=4, max_size=30
        ),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_tightness_scale_invariant_in_flow(self, acc, scale):
        rng = np.random.default_rng(0)
        accumulation = np.asarray(acc)
        flow = accumulation * 0.5 + rng.random(accumulation.size)
        a = RegionMFD(0, accumulation, flow).tightness()
        b = RegionMFD(0, accumulation, flow * scale).tightness()
        assert a == pytest.approx(b, rel=1e-6)
