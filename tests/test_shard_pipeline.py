"""ShardedSupergraphBuilder: delegation, invariance, equivalence.

The contract under test:

* ``n_shards=1`` → **bit-identical** to the serial
  :class:`~repro.supergraph.SupergraphBuilder`;
* fixed ``n_shards > 1`` → identical output for every worker count and
  every execution mode (parallelism changes speed, never results);
* shard-stitched output is a valid partition of comparable quality to
  the single-process reference (stitching legitimately reorders ties,
  so quality metrics — not labels — carry the equivalence at >1
  shard).
"""

import numpy as np
import pytest

from repro.datasets import small_network
from repro.exceptions import GraphError
from repro.graph.components import is_connected
from repro.network.dual import build_road_graph
from repro.pipeline.framework import SpatialPartitioningFramework
from repro.pipeline.schemes import run_scheme
from repro.shard.pipeline import (
    MIN_SHARD_NODES,
    ShardedSupergraphBuilder,
    build_supergraph_sharded,
)
from repro.shard.spatial import segment_midpoints
from repro.supergraph.builder import SupergraphBuilder
from repro.supergraph.supernode import membership_vector


@pytest.fixture(scope="module")
def city():
    """A small simulated city: (road_graph, midpoints, network)."""
    network, densities = small_network(seed=7)
    network.set_densities(densities)
    graph = build_road_graph(network)
    return graph, segment_midpoints(network), network


class TestDelegation:
    def test_one_shard_is_bit_identical_to_serial(self, city):
        graph, points, __ = city
        serial = SupergraphBuilder(seed=3).build(graph)
        sharded = ShardedSupergraphBuilder(n_shards=1, seed=3).build(
            graph, points=points
        )
        assert np.array_equal(serial.member_of, sharded.member_of)
        assert np.array_equal(serial.features(), sharded.features())
        assert (serial.adjacency != sharded.adjacency).nnz == 0

    def test_delegated_report(self, city):
        graph, points, __ = city
        builder = ShardedSupergraphBuilder(n_shards=1, seed=3)
        sg = builder.build(graph, points=points)
        report = builder.report
        assert report.n_shards == 1
        assert report.shard_sizes == [graph.n_nodes]
        assert report.stitch_kappa is None
        assert report.n_supernodes == sg.n_supernodes

    def test_tiny_graphs_clamp_to_one_shard(self, city):
        graph, points, __ = city
        builder = ShardedSupergraphBuilder(n_shards=64)
        max_useful = graph.n_nodes // MIN_SHARD_NODES
        assert builder.resolve_shards(graph.n_nodes) == max_useful

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(GraphError):
            ShardedSupergraphBuilder(n_shards=0)


class TestWorkerInvariance:
    @pytest.mark.parametrize(
        "workers,mode",
        [(1, "serial"), (2, "thread"), (4, "thread"), (2, "process")],
    )
    def test_output_independent_of_execution(self, city, workers, mode):
        graph, points, __ = city
        reference = ShardedSupergraphBuilder(
            n_shards=4, seed=11, workers=1, parallel_mode="serial"
        ).build(graph, points=points)
        sharded = ShardedSupergraphBuilder(
            n_shards=4, seed=11, workers=workers, parallel_mode=mode
        ).build(graph, points=points)
        assert np.array_equal(reference.member_of, sharded.member_of)
        assert np.array_equal(reference.features(), sharded.features())

    def test_deterministic_across_repeats(self, city):
        graph, points, __ = city
        a = ShardedSupergraphBuilder(n_shards=3, seed=5).build(graph, points=points)
        b = ShardedSupergraphBuilder(n_shards=3, seed=5).build(graph, points=points)
        assert np.array_equal(a.member_of, b.member_of)


class TestStitchedOutput:
    def test_valid_supergraph(self, city):
        graph, points, __ = city
        builder = ShardedSupergraphBuilder(n_shards=4, seed=2)
        sg = builder.build(graph, points=points)
        # the supernode cover is a partition of the road graph
        membership_vector(list(sg.supernodes), graph.n_nodes)
        # every supernode is connected in the road graph (stitching
        # only merges supernodes joined by cross-shard road edges)
        for sn in sg.supernodes:
            assert is_connected(graph.adjacency, sn.members)

    def test_stitching_merges_boundary_supernodes(self, city):
        graph, points, __ = city
        builder = ShardedSupergraphBuilder(n_shards=4, seed=2)
        sg = builder.build(graph, points=points)
        report = builder.report
        assert report.n_cross_edges > 0
        assert report.n_supernodes_before_stitch == sum(report.shard_supernodes)
        assert sg.n_supernodes <= report.n_supernodes_before_stitch
        assert report.stitch_kappa is not None

    def test_condensation_comparable_to_serial(self, city):
        """Sharding must not destroy the supergraph's reduction."""
        graph, points, __ = city
        serial = SupergraphBuilder(seed=2).build(graph)
        sharded = ShardedSupergraphBuilder(n_shards=4, seed=2).build(
            graph, points=points
        )
        assert sharded.n_supernodes < graph.n_nodes / 2
        # same order of magnitude as the serial condensation
        assert sharded.n_supernodes <= 6 * max(serial.n_supernodes, 1)

    def test_merged_features_within_density_range(self, city):
        graph, points, __ = city
        builder = ShardedSupergraphBuilder(n_shards=4, seed=2)
        sg = builder.build(graph, points=points)
        feats = np.asarray(graph.features)
        lo, hi = feats.min(), feats.max()
        for sn in sg.supernodes:
            # supernode features are (weighted means of) k-means
            # cluster means, so they can leave an individual
            # component's member range — like the serial builder's —
            # but never the global density range
            assert lo - 1e-9 <= sn.feature <= hi + 1e-9
            assert np.isfinite(sn.feature)


class TestSchemeEquivalence:
    def test_sharded_scheme_quality_within_tolerance(self, city):
        """Paper metrics of the sharded ASG run track the serial run."""
        graph, __, ___ = city
        serial = run_scheme("ASG", graph, k=4, seed=9)
        sharded = run_scheme("ASG", graph, k=4, seed=9, n_shards=2, workers=2)
        m_serial = serial.evaluate(graph)
        m_sharded = sharded.evaluate(graph)
        assert m_sharded["k"] == m_serial["k"]
        # ANS/GDBI are lower-better; stitching may reorder ties but
        # must stay in the same quality regime
        assert m_sharded["ans"] <= 1.5 * m_serial["ans"] + 1e-6
        assert m_sharded["gdbi"] <= 1.5 * m_serial["gdbi"] + 1e-6

    def test_sharded_scheme_output_mode_invariant(self, city):
        graph, __, ___ = city
        a = run_scheme(
            "ASG", graph, k=4, seed=9, n_shards=3, workers=1, parallel_mode="serial"
        )
        b = run_scheme(
            "ASG", graph, k=4, seed=9, n_shards=3, workers=2, parallel_mode="process"
        )
        assert np.array_equal(a.labels, b.labels)

    def test_one_shot_wrapper(self, city):
        graph, points, __ = city
        sg = build_supergraph_sharded(graph, n_shards=2, points=points, seed=1)
        assert sg.n_road_nodes == graph.n_nodes


class TestFrameworkIntegration:
    def test_partition_with_shards(self, city):
        __, ___, network = city
        framework = SpatialPartitioningFramework(
            k=4, scheme="ASG", seed=7, workers=2, parallel_mode="process", n_shards=3
        )
        result = framework.partition(network)
        assert result.k == 4
        assert result.validate(framework.last_road_graph).is_valid
        manifest = result.manifest
        assert manifest["config"]["n_shards"] == 3
        assert manifest["config"]["parallel_mode"] == "process"
        assert manifest["workers_requested"] == 2
        assert manifest["workers_resolved"] == 2

    def test_manifest_resolves_zero_workers(self, city):
        import os

        __, ___, network = city
        framework = SpatialPartitioningFramework(k=3, scheme="AG", seed=1, workers=0)
        result = framework.partition(network)
        assert result.manifest["workers_requested"] == 0
        assert result.manifest["workers_resolved"] == (os.cpu_count() or 1)
