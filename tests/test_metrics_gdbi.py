"""Tests for the graph Davies-Bouldin index."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.gdbi import gdbi


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestGdbi:
    def test_perfect_partitioning_zero(self, chain):
        feats = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        assert gdbi(feats, [0, 0, 0, 1, 1, 1], chain.adjacency) == pytest.approx(
            0.0
        )

    def test_lower_for_better_partitioning(self, chain):
        feats = [0.0, 0.1, 0.0, 1.0, 0.9, 1.0]
        good = gdbi(feats, [0, 0, 0, 1, 1, 1], chain.adjacency)
        bad = gdbi(feats, [0, 0, 1, 1, 2, 2], chain.adjacency)
        assert good < bad

    def test_nonnegative(self, chain, rng):
        feats = rng.random(6)
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert gdbi(feats, labels, chain.adjacency) >= 0.0

    def test_mean_agg_leq_max_agg(self, chain, rng):
        feats = rng.random(6)
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert gdbi(feats, labels, chain.adjacency, agg="mean") <= gdbi(
            feats, labels, chain.adjacency, agg="max"
        )

    def test_only_neighbours_compared(self):
        """A far-away partition with a confusable mean must not affect
        the index when it is not spatially adjacent."""
        g = Graph(6, edges=[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)])
        feats = [0.0, 0.2, 0.1, 1.0, 1.2, 1.1]
        labels = [0, 0, 0, 1, 1, 1]
        baseline = gdbi(feats, labels, g.adjacency)
        assert baseline > 0.0
        # add an isolated pair with the same mean as partition 0
        g2 = Graph(8, edges=[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (6, 7)])
        feats2 = feats + [0.0, 0.2]
        labels2 = labels + [2, 2]
        assert gdbi(feats2, labels2, g2.adjacency) == pytest.approx(
            baseline * 2 / 3  # same sum of ratios over one more partition
        )

    def test_coincident_means_with_spread_penalised(self, chain):
        feats = [0.0, 1.0, 0.5, 0.0, 1.0, 0.5]
        labels = [0, 0, 0, 1, 1, 1]
        assert gdbi(feats, labels, chain.adjacency) > 100.0

    def test_invalid_agg(self, chain):
        with pytest.raises(PartitioningError):
            gdbi([0.0] * 6, [0, 0, 0, 1, 1, 1], chain.adjacency, agg="sum")

    def test_empty_partition_rejected(self, chain):
        with pytest.raises(PartitioningError):
            gdbi([0.0] * 6, [0, 0, 0, 2, 2, 2], chain.adjacency)
