"""Smoke tests: the example scripts must run end to end.

Examples rot silently when APIs drift; running the fast ones in a
subprocess keeps them honest. The slowest examples (full scheme
comparison, city-scale scan) are exercised indirectly by the benchmark
suite and skipped here.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"

FAST_EXAMPLES = [
    "quickstart.py",
    "osm_import.py",
    "perimeter_control.py",
    "corridor_study.py",
    "congestion_monitoring.py",
]


def _example_env() -> dict:
    """Spawn environment with ``src`` on PYTHONPATH.

    The examples import ``repro`` without the package being installed;
    the subprocess does not inherit pytest's own import path, so the
    repo's ``src`` directory must be injected explicitly.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    parts = [str(SRC)] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} missing"
    proc = subprocess.run(
        [sys.executable, str(path)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=300,
        env=_example_env(),
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_have_docstrings():
    for script in EXAMPLES.glob("*.py"):
        first = script.read_text(encoding="utf-8").lstrip()
        assert first.startswith('"""'), f"{script.name} lacks a docstring"


def test_examples_inventory():
    """The README promises at least these examples."""
    names = {p.name for p in EXAMPLES.glob("*.py")}
    promised = {
        "quickstart.py",
        "peak_hour_analysis.py",
        "scheme_comparison.py",
        "city_scale_partitioning.py",
        "congestion_monitoring.py",
        "corridor_study.py",
        "perimeter_control.py",
        "osm_import.py",
    }
    assert promised <= names
