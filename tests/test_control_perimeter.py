"""Tests for perimeter control."""

import numpy as np
import pytest

from repro.control.perimeter import PerimeterController, region_entry_segments
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.pipeline.schemes import run_scheme
from repro.traffic.simulator import MicroSimulator


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestRegionEntrySegments:
    def test_chain_boundaries(self, chain):
        labels = [0, 0, 0, 1, 1, 1]
        np.testing.assert_array_equal(
            region_entry_segments(chain.adjacency, labels, 0), [2]
        )
        np.testing.assert_array_equal(
            region_entry_segments(chain.adjacency, labels, 1), [3]
        )

    def test_interior_region_all_sides(self, chain):
        labels = [0, 0, 1, 1, 2, 2]
        np.testing.assert_array_equal(
            region_entry_segments(chain.adjacency, labels, 1), [2, 3]
        )

    def test_out_of_range_region(self, chain):
        with pytest.raises(PartitioningError):
            region_entry_segments(chain.adjacency, [0] * 6, 5)


class TestPerimeterController:
    def test_closes_above_upper(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(chain.adjacency, labels, upper=5.0)
        occupancy = np.array([0, 0, 0, 3, 3, 0])  # region 1 at 6 > 5
        decision = ctrl(0, occupancy)
        assert 1 in ctrl.currently_closed
        # boundary inflow 2 -> 3 held, internal move 3 -> 4 free
        assert not decision.allows(2, 3)
        assert decision.allows(3, 4)

    def test_outbound_flow_never_gated(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(chain.adjacency, labels, upper=5.0)
        decision = ctrl(0, np.array([0, 0, 0, 3, 3, 0]))
        assert decision.allows(3, 2)  # leaving the closed region is free

    def test_internal_departures_allowed(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(chain.adjacency, labels, upper=5.0)
        decision = ctrl(0, np.array([0, 0, 0, 3, 3, 0]))
        assert decision.allows(None, 4)

    def test_open_below_upper(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(chain.adjacency, labels, upper=10.0)
        decision = ctrl(0, np.array([1, 1, 1, 1, 1, 1]))
        assert ctrl.currently_closed == frozenset()
        assert decision.allows(2, 3)

    def test_hysteresis(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper=5.0, lower=2.0
        )
        ctrl(0, np.array([0, 0, 0, 3, 3, 0]))  # closes at 6
        # still above lower: stays closed even though below upper
        decision = ctrl(1, np.array([0, 0, 0, 2, 1, 0]))
        assert not decision.allows(2, 3)
        # below lower: reopens
        decision = ctrl(2, np.array([0, 0, 0, 1, 0, 0]))
        assert decision.allows(2, 3)

    def test_protected_subset(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper=1.0, protected=[1]
        )
        decision = ctrl(0, np.array([5, 5, 5, 0, 0, 0]))  # region 0 loaded
        assert ctrl.currently_closed == frozenset()
        assert decision.allows(3, 2)

    def test_per_region_setpoints(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper={0: 100.0, 1: 2.0}
        )
        decision = ctrl(0, np.array([0, 0, 0, 3, 0, 0]))
        assert not decision.allows(2, 3)

    def test_history_recorded(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(chain.adjacency, labels, upper=100.0)
        ctrl(0, np.zeros(6, dtype=int))
        ctrl(1, np.zeros(6, dtype=int))
        assert len(ctrl.gate_history) == 2

    def test_validation(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        with pytest.raises(PartitioningError):
            PerimeterController(chain.adjacency, labels, upper=0.0)
        with pytest.raises(PartitioningError):
            PerimeterController(
                chain.adjacency, labels, upper=5.0, lower=6.0
            )
        with pytest.raises(PartitioningError):
            PerimeterController(chain.adjacency, labels, upper={0: 5.0})
        with pytest.raises(PartitioningError):
            PerimeterController(
                chain.adjacency, labels, upper=5.0, protected=[7]
            )


class TestPerimeterInSimulation:
    def test_control_caps_region_accumulation(self):
        """Gating a protected region keeps its peak accumulation below
        the uncontrolled run's."""
        network = grid_network(6, 6, spacing=100.0, two_way=True)
        graph = build_road_graph(network)
        # partition and protect the busiest region
        from repro.traffic.profiles import hotspot_profile

        dens = hotspot_profile(network, n_hotspots=1, noise=0.0, seed=0)
        labels = run_scheme("ASG", graph.with_features(dens), 4, seed=0).labels

        sim = MicroSimulator(network, seed=0)
        free = sim.run(n_vehicles=400, n_steps=50, centre_bias=4.0)
        free_acc = np.array(
            [free.counts[:, labels == r].sum(axis=1).max() for r in range(4)]
        )
        busiest = int(np.argmax(free_acc))
        setpoint = 0.6 * free_acc[busiest]

        ctrl = PerimeterController(
            graph.adjacency,
            labels,
            upper=setpoint,
            protected=[busiest],
            max_inflow_per_step=2,
        )
        sim2 = MicroSimulator(network, seed=0)
        gated = sim2.run(
            n_vehicles=400, n_steps=50, centre_bias=4.0, gate=ctrl
        )
        gated_peak = gated.counts[:, labels == busiest].sum(axis=1).max()
        assert gated_peak < free_acc[busiest]


class TestInflowMetering:
    def test_metering_limits_grants_per_step(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper=100.0, max_inflow_per_step=1
        )
        ctrl(0, np.zeros(6, dtype=int))  # open, metered
        assert ctrl.allows(2, 3)  # first grant
        assert not ctrl.allows(2, 3)  # metered out

    def test_grants_reset_each_step(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper=100.0, max_inflow_per_step=1
        )
        ctrl(0, np.zeros(6, dtype=int))
        assert ctrl.allows(2, 3)
        ctrl(1, np.zeros(6, dtype=int))
        assert ctrl.allows(2, 3)

    def test_internal_moves_never_metered(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        ctrl = PerimeterController(
            chain.adjacency, labels, upper=100.0, max_inflow_per_step=0
        )
        ctrl(0, np.zeros(6, dtype=int))
        assert ctrl.allows(3, 4)
        assert not ctrl.allows(2, 3)

    def test_negative_rate_rejected(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        with pytest.raises(PartitioningError):
            PerimeterController(
                chain.adjacency, labels, upper=5.0, max_inflow_per_step=-1
            )
