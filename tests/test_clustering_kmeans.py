"""Tests for repro.clustering.kmeans."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans, kmeans_1d
from repro.exceptions import ClusteringError


class TestKmeans1d:
    def test_two_obvious_clusters(self):
        values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
        result = kmeans_1d(values, 2)
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]

    def test_centers_sorted(self):
        result = kmeans_1d([5.0, 1.0, 9.0, 1.1, 5.2, 9.3], 3)
        assert (np.diff(result.centers) >= 0).all()

    def test_deterministic(self):
        values = np.random.default_rng(0).random(100)
        a = kmeans_1d(values, 5)
        b = kmeans_1d(values, 5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_order_invariant_inertia(self):
        """The sorted-init variant gives the same solution regardless of
        input order (it sorts internally)."""
        rng = np.random.default_rng(1)
        values = rng.random(60)
        shuffled = rng.permutation(values)
        assert kmeans_1d(values, 4).inertia == pytest.approx(
            kmeans_1d(shuffled, 4).inertia
        )

    def test_kappa_equals_n(self):
        values = [1.0, 2.0, 3.0]
        result = kmeans_1d(values, 3)
        assert result.inertia == pytest.approx(0.0)
        assert len(set(result.labels.tolist())) == 3

    def test_kappa_one(self):
        values = [1.0, 3.0]
        result = kmeans_1d(values, 1)
        assert result.centers[0] == pytest.approx(2.0)

    def test_all_identical_values(self):
        result = kmeans_1d([2.0] * 10, 3)
        assert result.inertia == pytest.approx(0.0)

    def test_inertia_decreases_with_kappa(self):
        values = np.random.default_rng(2).random(200)
        inertias = [kmeans_1d(values, k).inertia for k in (2, 4, 8, 16)]
        assert all(a >= b - 1e-12 for a, b in zip(inertias, inertias[1:]))

    def test_invalid_kappa(self):
        with pytest.raises(ClusteringError):
            kmeans_1d([1.0, 2.0], 0)
        with pytest.raises(ClusteringError):
            kmeans_1d([1.0, 2.0], 3)

    def test_non_finite_rejected(self):
        with pytest.raises(ClusteringError):
            kmeans_1d([1.0, float("nan")], 1)

    def test_assignment_is_nearest_center(self):
        values = np.random.default_rng(3).random(100)
        result = kmeans_1d(values, 5)
        d = np.abs(values[:, None] - result.centers[None, :])
        np.testing.assert_array_equal(result.labels, d.argmin(axis=1))


class TestKmeansNd:
    def test_two_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=(0, 0), scale=0.1, size=(20, 2))
        b = rng.normal(loc=(5, 5), scale=0.1, size=(20, 2))
        data = np.vstack([a, b])
        result = kmeans(data, 2, seed=0)
        assert len(set(result.labels[:20].tolist())) == 1
        assert len(set(result.labels[20:].tolist())) == 1
        assert result.labels[0] != result.labels[20]

    def test_reproducible_with_seed(self):
        data = np.random.default_rng(1).random((50, 3))
        a = kmeans(data, 4, seed=7)
        b = kmeans(data, 4, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_n_init_improves_or_equals(self):
        data = np.random.default_rng(2).random((80, 2))
        single = kmeans(data, 6, n_init=1, seed=0).inertia
        multi = kmeans(data, 6, n_init=8, seed=0).inertia
        assert multi <= single + 1e-9

    def test_1d_input_promoted(self):
        result = kmeans([1.0, 1.1, 5.0, 5.1], 2, seed=0)
        assert result.centers.shape == (2, 1)

    def test_no_empty_clusters(self):
        data = np.random.default_rng(3).random((30, 2))
        result = kmeans(data, 10, seed=0)
        assert len(np.unique(result.labels)) == 10

    def test_kappa_property(self):
        result = kmeans(np.random.default_rng(0).random((10, 2)), 3, seed=0)
        assert result.kappa == 3

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            kmeans(np.ones((5, 2)), 6)
        with pytest.raises(ClusteringError):
            kmeans(np.ones((5, 2, 2)), 2)
        with pytest.raises(ClusteringError):
            kmeans(np.full((5, 2), np.nan), 2)
        with pytest.raises(ClusteringError):
            kmeans(np.ones((5, 2)), 2, n_init=0)
