"""Tests for Algorithm 1 end to end (SupergraphBuilder)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.components import is_connected
from repro.supergraph.builder import SupergraphBuilder, build_supergraph
from repro.supergraph.supernode import membership_vector


def _stepped_path(n_groups=4, per=10, step=1.0, noise=0.02, seed=0):
    """A path graph whose densities form n_groups plateaus."""
    rng = np.random.default_rng(seed)
    n = n_groups * per
    feats = np.concatenate(
        [step * g + rng.normal(0, noise, per) for g in range(n_groups)]
    )
    feats = np.abs(feats)
    return Graph(n, edges=[(i, i + 1) for i in range(n - 1)], features=feats)


class TestBuildSupergraph:
    def test_condenses_plateaus(self):
        graph = _stepped_path()
        sg = build_supergraph(graph, seed=0)
        assert sg.n_supernodes < graph.n_nodes
        assert sg.n_road_nodes == graph.n_nodes

    def test_cover_is_partition(self):
        graph = _stepped_path()
        sg = build_supergraph(graph, seed=0)
        membership_vector(list(sg.supernodes), graph.n_nodes)

    def test_supernodes_connected_in_road_graph(self):
        graph = _stepped_path()
        sg = build_supergraph(graph, seed=0)
        for sn in sg.supernodes:
            assert is_connected(graph.adjacency, sn.members)

    def test_supernodes_internally_similar(self):
        """Members of one supernode sit on one density plateau."""
        graph = _stepped_path()
        sg = build_supergraph(graph, seed=0)
        feats = np.asarray(graph.features)
        for sn in sg.supernodes:
            assert np.ptp(feats[sn.members]) < 0.5  # plateau step is 1.0

    def test_report_filled(self):
        graph = _stepped_path()
        builder = SupergraphBuilder(seed=0)
        builder.build(graph)
        report = builder.report
        assert report is not None
        assert report.chosen_kappa in report.shortlisted
        assert len(report.component_counts) == len(report.shortlisted)
        assert min(report.component_counts) == report.component_counts[
            report.shortlisted.index(report.chosen_kappa)
        ]

    def test_stability_threshold_grows_supernodes(self):
        graph = _stepped_path(noise=0.15, seed=1)
        plain = build_supergraph(graph, epsilon_eta=0.0, seed=0)
        stable = build_supergraph(graph, epsilon_eta=0.995, seed=0)
        assert stable.n_supernodes >= plain.n_supernodes

    def test_absolute_threshold_path(self):
        graph = _stepped_path()
        sg = build_supergraph(graph, epsilon_theta=0.0, seed=0)
        assert sg.n_supernodes >= 1

    def test_sampled_scan(self):
        graph = _stepped_path(per=50)
        sg = build_supergraph(graph, sample_size=80, seed=0)
        assert sg.n_supernodes < graph.n_nodes

    def test_superlink_weights_unit_interval(self):
        graph = _stepped_path()
        sg = build_supergraph(graph, seed=0)
        if sg.adjacency.nnz:
            assert sg.adjacency.data.min() > 0.0
            assert sg.adjacency.data.max() <= 1.0 + 1e-12

    def test_too_small_graph_rejected(self):
        with pytest.raises(GraphError):
            build_supergraph(Graph(2, edges=[(0, 1)], features=[0.0, 1.0]))

    def test_invalid_epsilon_eta(self):
        with pytest.raises(GraphError):
            SupergraphBuilder(epsilon_eta=2.0)

    def test_deterministic_given_seed(self):
        graph = _stepped_path()
        a = build_supergraph(graph, seed=5)
        b = build_supergraph(graph, seed=5)
        assert a.n_supernodes == b.n_supernodes
        np.testing.assert_array_equal(a.member_of, b.member_of)


class TestKmeansMethodOption:
    def test_optimal_method_builds(self):
        graph = _stepped_path(noise=0.1, seed=2)
        sg = SupergraphBuilder(kmeans_method="optimal", seed=0).build(graph)
        assert 1 <= sg.n_supernodes <= graph.n_nodes

    def test_optimal_never_more_supernodes(self):
        graph = _stepped_path(noise=0.1, seed=2)
        lloyd_builder = SupergraphBuilder(kmeans_method="lloyd", seed=0)
        optimal_builder = SupergraphBuilder(kmeans_method="optimal", seed=0)
        lloyd_sg = lloyd_builder.build(graph)
        optimal_sg = optimal_builder.build(graph)
        # both pick the min-supernode configuration from their own
        # (possibly different) shortlists; the exact clusterer should
        # not be forced into a wildly larger supergraph
        assert optimal_sg.n_supernodes <= 2 * lloyd_sg.n_supernodes

    def test_invalid_method_rejected(self):
        with pytest.raises(GraphError):
            SupergraphBuilder(kmeans_method="magic")
