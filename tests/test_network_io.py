"""Tests for network (de)serialisation."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.network.io import (
    load_density_series,
    load_network_csv,
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_density_series,
    save_network_csv,
    save_network_json,
)


@pytest.fixture
def network():
    net = grid_network(3, 3, two_way=True)
    rng = np.random.default_rng(0)
    net.set_densities(rng.random(net.n_segments) * 0.1)
    return net


class TestJsonRoundTrip:
    def test_dict_round_trip(self, network):
        data = network_to_dict(network)
        restored = network_from_dict(data)
        assert restored.n_segments == network.n_segments
        np.testing.assert_allclose(restored.densities(), network.densities())

    def test_file_round_trip(self, network, tmp_path):
        path = tmp_path / "net.json"
        save_network_json(network, path)
        restored = load_network_json(path)
        assert restored.n_intersections == network.n_intersections
        assert restored.segment(3).length == network.segment(3).length

    def test_wrong_format_rejected(self):
        with pytest.raises(DataError, match="not a repro"):
            network_from_dict({"format": "something-else"})

    def test_preserves_metadata(self, network):
        restored = network_from_dict(network_to_dict(network))
        seg = network.segment(0)
        rseg = restored.segment(0)
        assert (rseg.lanes, rseg.speed_limit) == (seg.lanes, seg.speed_limit)


class TestCsvRoundTrip:
    def test_round_trip(self, network, tmp_path):
        stem = tmp_path / "net"
        save_network_csv(network, stem)
        restored = load_network_csv(stem)
        assert restored.n_segments == network.n_segments
        np.testing.assert_allclose(restored.densities(), network.densities())

    def test_missing_pair_raises(self, tmp_path):
        with pytest.raises(DataError, match="missing"):
            load_network_csv(tmp_path / "absent")


class TestDensitySeries:
    def test_round_trip(self, tmp_path):
        series = np.random.default_rng(0).random((5, 8))
        path = tmp_path / "series.csv"
        save_density_series(series, path)
        restored = load_density_series(path)
        np.testing.assert_allclose(restored, series)

    def test_single_row_keeps_2d(self, tmp_path):
        series = np.ones((1, 4))
        path = tmp_path / "one.csv"
        save_density_series(series, path)
        assert load_density_series(path).shape == (1, 4)

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(DataError):
            save_density_series(np.ones(3), tmp_path / "bad.csv")
