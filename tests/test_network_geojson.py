"""Tests for GeoJSON export."""

import json

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.network.geojson import network_to_geojson, save_geojson


@pytest.fixture(scope="module")
def network():
    net = grid_network(3, 3, spacing=100.0, two_way=True)
    net.set_densities(np.linspace(0.0, 0.1, net.n_segments))
    return net


class TestNetworkToGeojson:
    def test_feature_collection_shape(self, network):
        doc = network_to_geojson(network)
        assert doc["type"] == "FeatureCollection"
        assert len(doc["features"]) == network.n_segments

    def test_linestring_geometry(self, network):
        doc = network_to_geojson(network)
        geometry = doc["features"][0]["geometry"]
        assert geometry["type"] == "LineString"
        assert len(geometry["coordinates"]) == 2

    def test_density_property(self, network):
        doc = network_to_geojson(network)
        densities = [f["properties"]["density"] for f in doc["features"]]
        np.testing.assert_allclose(densities, network.densities())

    def test_partition_property(self, network):
        labels = np.arange(network.n_segments) % 3
        doc = network_to_geojson(network, labels=labels)
        parts = [f["properties"]["partition"] for f in doc["features"]]
        np.testing.assert_array_equal(parts, labels)

    def test_no_partition_property_when_absent(self, network):
        doc = network_to_geojson(network)
        assert "partition" not in doc["features"][0]["properties"]

    def test_origin_produces_degrees(self, network):
        doc = network_to_geojson(network, origin=(-37.81, 144.96))  # Melbourne
        lon, lat = doc["features"][0]["geometry"]["coordinates"][0]
        assert -38.0 < lat < -37.5
        assert 144.5 < lon < 145.5

    def test_json_serialisable(self, network):
        doc = network_to_geojson(network, labels=np.zeros(network.n_segments, int))
        json.dumps(doc)  # must not raise

    def test_shape_validation(self, network):
        with pytest.raises(DataError):
            network_to_geojson(network, labels=[0, 1])
        with pytest.raises(DataError):
            network_to_geojson(network, densities=[0.1])


class TestSaveGeojson:
    def test_round_trip(self, network, tmp_path):
        doc = network_to_geojson(network)
        path = save_geojson(doc, tmp_path / "net.geojson")
        restored = json.loads(path.read_text(encoding="utf-8"))
        assert restored == doc
