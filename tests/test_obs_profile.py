"""Tests for repro.obs.profile: sampling profiler, serialisers, gauges.

Covers the deep-profiling pillar end to end — ProfileConfig
validation, a real profiled pipeline run (span CPU/memory attributes,
speedscope + collapsed exports), exact round-trip properties of both
serialisers (hypothesis), the strict speedscope validator's rejection
surface, profile diffing, process gauges in the Prometheus exposition,
the memory-aware bench gate direction, and the CLI surface
(``obs profile`` / ``obs diff`` / ``partition --profile-out``).
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.datasets import small_network
from repro.obs import ObsContext, observe_run
from repro.obs.bench import value_direction
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ProfileConfig,
    Profiler,
    diff_profiles,
    frame_weights,
    parse_collapsed,
    process_max_rss_bytes,
    process_rss_bytes,
    render_collapsed,
    render_diff,
    sample_process_gauges,
    speedscope_from_stacks,
    stacks_from_speedscope,
    validate_speedscope,
)
from repro.obs.trace import Tracer
from repro.pipeline.framework import SpatialPartitioningFramework


def _profiled_run(hz=500.0, memory=True):
    """One small profiled pipeline run; returns the ObsContext."""
    network, densities = small_network(seed=7)
    obs = ObsContext(
        dataset="small", scheme="ASG",
        profile=ProfileConfig(hz=hz, memory=memory),
    )
    framework = SpatialPartitioningFramework(k=4, scheme="ASG", seed=7, obs=obs)
    framework.partition(network, densities)
    return obs


@pytest.fixture(scope="module")
def profiled_obs():
    return _profiled_run()


class TestProfileConfig:
    def test_defaults(self):
        config = ProfileConfig()
        assert config.cpu and not config.memory
        assert config.hz == 97.0

    @pytest.mark.parametrize("hz", [0, -1, 10_001])
    def test_bad_hz_rejected(self, hz):
        with pytest.raises(ValueError, match="hz"):
            ProfileConfig(hz=hz)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="max_stack_depth"):
            ProfileConfig(max_stack_depth=0)

    def test_nothing_enabled_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            ProfileConfig(cpu=False, memory=False)


class TestProfiledRun:
    def test_samples_collected(self, profiled_obs):
        assert profiled_obs.profiler.n_samples > 0

    def test_span_memory_attributes(self, profiled_obs):
        run_span = profiled_obs.tracer.roots[0]
        assert isinstance(run_span.attrs.get("alloc_bytes"), int)

    def test_span_cpu_attributes_present_in_tree(self, profiled_obs):
        tree = json.dumps(profiled_obs.trace_tree())
        assert "alloc_bytes" in tree
        # at least one span must carry sampled CPU time on a real run
        assert "cpu_self_s" in tree

    def test_cpu_total_covers_self(self, profiled_obs):
        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        for root in profiled_obs.tracer.roots:
            for span in walk(root):
                if "cpu_self_s" in span.attrs:
                    assert span.attrs.get("cpu_total_s", 0) >= span.attrs[
                        "cpu_self_s"
                    ] - 1e-9

    def test_speedscope_document_validates(self, profiled_obs):
        doc = profiled_obs.speedscope()
        assert validate_speedscope(doc)
        assert doc["profiles"]  # at least the main thread

    def test_collapsed_round_trips(self, profiled_obs):
        text = profiled_obs.profiler.collapsed()
        counts = parse_collapsed(text)
        assert counts == profiled_obs.profiler.counts()

    def test_span_pseudo_frames_in_stacks(self, profiled_obs):
        doc = profiled_obs.speedscope()
        frames = {f["name"] for f in doc["shared"]["frames"]}
        assert any(name.startswith("span:") for name in frames)

    def test_profile_dict_summary(self, profiled_obs):
        summary = profiled_obs.profile_dict()
        assert summary["n_samples"] == profiled_obs.profiler.n_samples
        assert summary["memory"] is True
        assert summary["peak_alloc_bytes"] >= 0
        assert all("cpu_self_s" in row for row in summary["span_cpu"])

    def test_registry_gauges_recorded(self, profiled_obs):
        gauges = profiled_obs.metrics_dict()["gauges"]
        assert gauges["profile.samples"] == profiled_obs.profiler.n_samples
        assert gauges["process.peak_alloc_bytes"] > 0

    def test_write_profile_artifacts(self, tmp_path):
        obs = _profiled_run(memory=False)
        speedscope_path = obs.write_profile(tmp_path / "p.speedscope.json")
        collapsed_path = obs.write_collapsed(tmp_path / "p.collapsed.txt")
        doc = json.loads(speedscope_path.read_text())
        assert validate_speedscope(doc)
        assert parse_collapsed(collapsed_path.read_text())

    def test_write_profile_requires_profiling(self):
        obs = ObsContext(dataset="small", scheme="ASG")
        with pytest.raises(ValueError, match="not enabled"):
            obs.write_profile("unused.json")
        assert obs.profile_dict() is None
        assert obs.speedscope() is None

    def test_observe_run_profile_kwarg(self):
        with observe_run(dataset="small", scheme="ASG", profile=True) as obs:
            time.sleep(0.02)
        assert obs.profiler is not None

    def test_framework_profile_kwarg_creates_obs(self):
        network, densities = small_network(seed=3)
        framework = SpatialPartitioningFramework(
            k=3, seed=3, profile=ProfileConfig(hz=500.0)
        )
        framework.partition(network, densities)
        assert framework.obs is not None
        assert framework.obs.profiler.n_samples >= 0
        assert validate_speedscope(framework.obs.speedscope())

    def test_worker_threads_sampled(self):
        """map_parallel worker stacks appear under their own thread name."""
        from repro.util.parallel import map_parallel

        def spin(_):
            deadline = time.perf_counter() + 0.15
            total = 0
            while time.perf_counter() < deadline:
                total += sum(range(200))
            return total

        profiler = Profiler(ProfileConfig(hz=500.0))
        with profiler:
            map_parallel(spin, range(4), workers=2)
        threads = {stack[0] for stack in profiler.counts()}
        assert any(name.startswith("repro-worker") for name in threads)


class TestNestedActivation:
    def test_nested_starts_share_one_session(self):
        profiler = Profiler(ProfileConfig(hz=500.0))
        with profiler:
            with profiler:
                time.sleep(0.02)
            # still active: inner stop must not finalise
            assert profiler._thread is not None
        assert profiler._thread is None
        assert profiler.n_samples >= 0

    def test_sampler_thread_stops(self):
        profiler = Profiler(ProfileConfig(hz=500.0))
        with profiler:
            time.sleep(0.02)
        time.sleep(0.01)
        names = {t.name for t in threading.enumerate()}
        assert "repro-profiler" not in names


# ----------------------------------------------------------------------
# serialiser round trips (property-based)
# frames the collapsed renderer accepts: non-empty, no ';', and no
# character str.splitlines treats as a line boundary
frame_text = st.text(
    alphabet=st.characters(
        blacklist_characters=";", blacklist_categories=("Cs",)
    ),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip() and s.splitlines() == [s])


class TestCollapsedRoundTrip:
    @given(
        counts=st.dictionaries(
            st.lists(frame_text, min_size=1, max_size=6).map(tuple),
            st.integers(min_value=1, max_value=10**9),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_render_parse_identity(self, counts):
        assert parse_collapsed(render_collapsed(counts)) == counts

    def test_repeated_stacks_accumulate(self):
        text = "a;b 2\na;b 3\n"
        assert parse_collapsed(text) == {("a", "b"): 5}

    @pytest.mark.parametrize(
        "bad",
        ["justoneword\n", "a;b notanumber\n", "a;b 0\n", "a;;b 2\n"],
    )
    def test_parse_rejects_malformed_lines(self, bad):
        with pytest.raises(ValueError):
            parse_collapsed(bad)

    @pytest.mark.parametrize(
        "counts",
        [
            {(): 1},
            {("has;semi",): 1},
            {("a",): 0},
            {("a",): True},
            {("",): 1},
        ],
    )
    def test_render_rejects_unrepresentable(self, counts):
        with pytest.raises(ValueError):
            render_collapsed(counts)


class TestSpeedscopeRoundTrip:
    @given(
        stacks=st.dictionaries(
            st.lists(frame_text, min_size=1, max_size=5).map(tuple),
            st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False, width=32
            ),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stacks_survive_document(self, stacks):
        doc = speedscope_from_stacks(stacks, name="t")
        recovered = stacks_from_speedscope(doc)["t"] if stacks else {}
        assert set(recovered) == set(stacks)
        for frames, weight in stacks.items():
            assert recovered[frames] == pytest.approx(float(weight))

    def test_document_is_json_stable(self):
        doc = speedscope_from_stacks({("a", "b"): 1.5, ("a",): 0.5})
        assert json.loads(json.dumps(doc)) == doc
        assert validate_speedscope(doc)


class TestValidateSpeedscope:
    def _doc(self):
        return speedscope_from_stacks({("a", "b"): 1.0, ("c",): 2.0})

    def test_accepts_own_output(self):
        assert validate_speedscope(self._doc())

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.pop("$schema"), "schema"),
            (lambda d: d.update(profiles=[]), "profiles"),
            (lambda d: d["shared"].update(frames="x"), "frames"),
            (lambda d: d["shared"]["frames"][0].update(name=""), "name"),
            (lambda d: d["profiles"][0].update(type="evented"), "type"),
            (lambda d: d["profiles"][0].update(unit="fortnights"), "unit"),
            (lambda d: d["profiles"][0].update(startValue=99), "startValue"),
            (lambda d: d["profiles"][0]["samples"].append([77]), "weights"),
            (lambda d: d["profiles"][0]["samples"].__setitem__(0, [99]), "index"),
            (lambda d: d["profiles"][0]["samples"].__setitem__(0, []), "non-empty"),
            (lambda d: d["profiles"][0]["weights"].__setitem__(0, -1.0), "negative"),
            (lambda d: d["profiles"][0]["weights"].__setitem__(0, True), "number"),
            (lambda d: d.update(activeProfileIndex=5), "activeProfileIndex"),
        ],
    )
    def test_rejects_mutations(self, mutate, match):
        doc = self._doc()
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            validate_speedscope(doc)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="object"):
            validate_speedscope([1, 2, 3])


class TestDiff:
    def test_ranked_by_absolute_self_delta(self):
        base = speedscope_from_stacks({("main", "slow"): 1.0, ("main", "ok"): 0.5})
        new = speedscope_from_stacks({("main", "slow"): 4.0, ("main", "ok"): 0.6})
        rows = diff_profiles(base, new)
        assert rows[0]["frame"] == "slow"
        assert rows[0]["delta_s"] == pytest.approx(3.0)
        assert rows[0]["self_base_s"] == pytest.approx(1.0)

    def test_frames_unique_to_either_side(self):
        base = speedscope_from_stacks({("gone",): 2.0})
        new = speedscope_from_stacks({("fresh",): 3.0})
        by_frame = {r["frame"]: r for r in diff_profiles(base, new)}
        assert by_frame["gone"]["delta_s"] == pytest.approx(-2.0)
        assert by_frame["fresh"]["delta_s"] == pytest.approx(3.0)

    def test_render_diff_table(self):
        base = speedscope_from_stacks({("a",): 1.0})
        new = speedscope_from_stacks({("a",): 2.0})
        out = render_diff(diff_profiles(base, new), top=5)
        assert "frame" in out and "a" in out

    def test_frame_weights_self_vs_total(self):
        doc = speedscope_from_stacks({("outer", "inner"): 2.0, ("outer",): 1.0})
        weights = frame_weights(doc)
        assert weights["inner"]["self"] == pytest.approx(2.0)
        assert weights["outer"]["self"] == pytest.approx(1.0)
        assert weights["outer"]["total"] == pytest.approx(3.0)

    def test_recursion_not_double_billed(self):
        doc = speedscope_from_stacks({("f", "f", "f"): 3.0})
        assert frame_weights(doc)["f"]["total"] == pytest.approx(3.0)


class TestProcessGauges:
    def test_rss_helpers_positive_on_linux(self):
        rss = process_rss_bytes()
        peak = process_max_rss_bytes()
        assert rss is None or rss > 0
        assert peak is None or peak > 0

    def test_gauges_land_in_prometheus_exposition(self):
        registry = MetricsRegistry()
        sample_process_gauges(registry)
        text = render_prometheus(registry.to_dict())
        samples, types = parse_prometheus(text)
        names = {s.name for s in samples}
        assert "repro_process_threads" in names
        # gc gauges carry the generation as a label
        gens = {
            s.labels.get("gen")
            for s in samples
            if s.name == "repro_process_gc_collections"
        }
        assert gens >= {"0", "1", "2"}
        assert types.get("repro_process_threads") == "gauge"

    def test_gc_generations_all_present(self):
        registry = MetricsRegistry()
        sample_process_gauges(registry)
        gauges = registry.to_dict()["gauges"]
        for gen in range(3):
            assert f"process.gc_collections[gen={gen}]" in gauges


class TestBenchMemoryGate:
    @pytest.mark.parametrize(
        "key",
        ["x.max_rss_bytes", "peak_alloc_bytes", "pipeline.mem_bytes"],
    )
    def test_memory_keys_gate_lower(self, key):
        assert value_direction(key) == "lower"

    def test_plain_bytes_not_gated(self):
        assert value_direction("payload.size_bytes") is None

    def test_timing_keys_unaffected(self):
        assert value_direction("module2.wall_s") == "lower"
        assert value_direction("scan.speedup") == "higher"


class TestCli:
    def test_obs_profile_emits_artifact_set(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(
            ["obs", "profile", "D1", "-k", "4", "--memory",
             "--out-dir", str(out_dir)]
        ) == 0
        doc = json.loads((out_dir / "profile.speedscope.json").read_text())
        assert validate_speedscope(doc)
        assert parse_collapsed(
            (out_dir / "profile.collapsed.txt").read_text()
        ) is not None
        report = (out_dir / "report.html").read_text()
        assert "cpu flame graph" in report or "CPU profile" in report
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "metrics.json").exists()
        assert "profiled D1" in capsys.readouterr().out

    def test_partition_profile_out(self, tmp_path):
        path = tmp_path / "run.speedscope.json"
        assert main(
            ["partition", "D1", "-k", "3", "--profile-out", str(path)]
        ) == 0
        assert validate_speedscope(json.loads(path.read_text()))

    def test_obs_diff(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(speedscope_from_stacks({("a",): 1.0})))
        new.write_text(json.dumps(speedscope_from_stacks({("a",): 3.0})))
        assert main(["obs", "diff", str(base), str(new), "--top", "3"]) == 0
        assert "a" in capsys.readouterr().out

    def test_obs_diff_rejects_invalid_profile(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(speedscope_from_stacks({("a",): 1.0})))
        assert main(["obs", "diff", str(bad), str(good)]) == 1

    def test_obs_report_with_profile(self, tmp_path):
        obs = _profiled_run(memory=False)
        trace = obs.write_trace(tmp_path / "trace.json")
        metrics = obs.write_metrics(tmp_path / "metrics.json")
        profile = obs.write_profile(tmp_path / "p.speedscope.json")
        out = tmp_path / "report.html"
        assert main(
            ["obs", "report", str(trace), str(metrics),
             "-o", str(out), "--profile", str(profile)]
        ) == 0
        assert "cpu flame graph" in out.read_text()


class TestTracerRegistry:
    def test_open_spans_snapshot(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                spans = tracer.open_spans()
                assert [s.name for s in spans] == ["outer", "inner"]
        assert tracer.open_spans() == []

    def test_open_spans_other_thread(self):
        tracer = Tracer()
        seen = {}
        release = threading.Event()
        ready = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                ready.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert ready.wait(timeout=5)
            seen["spans"] = tracer.open_spans(thread.ident)
        finally:
            release.set()
            thread.join()
        assert [s.name for s in seen["spans"]] == ["worker-span"]
