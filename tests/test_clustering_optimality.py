"""Tests for clustering gain / balance / MCG and the kappa scan."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans_1d
from repro.clustering.optimality import (
    clustering_balance,
    clustering_gain,
    moderated_clustering_gain,
    scan_kappa,
    shortlist_kappa,
)
from repro.exceptions import ClusteringError


def _blobs(kappa=3, per=30, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    data = np.concatenate(
        [rng.normal(loc=5.0 * i, scale=spread, size=per) for i in range(kappa)]
    )
    return data


class TestClusteringGain:
    def test_zero_for_single_cluster(self):
        data = _blobs(2)
        # one cluster centred on the global mean -> gain 0
        assert clustering_gain(data, np.zeros(len(data), dtype=int)) == pytest.approx(
            0.0
        )

    def test_positive_for_good_split(self):
        data = _blobs(2, per=10)
        labels = np.array([0] * 10 + [1] * 10)
        assert clustering_gain(data, labels) > 0.0

    def test_correct_split_beats_random(self):
        data = _blobs(2, per=20, seed=1)
        good = np.array([0] * 20 + [1] * 20)
        rng = np.random.default_rng(0)
        bad = rng.permutation(good)
        assert clustering_gain(data, good) > clustering_gain(data, bad)

    def test_label_shape_mismatch(self):
        with pytest.raises(ClusteringError):
            clustering_gain([1.0, 2.0], [0])

    def test_negative_labels_rejected(self):
        with pytest.raises(ClusteringError):
            clustering_gain([1.0, 2.0], [0, -1])


class TestClusteringBalance:
    def test_lower_for_correct_split(self):
        data = _blobs(2, per=20, seed=1)
        good = np.array([0] * 20 + [1] * 20)
        bad = np.random.default_rng(0).permutation(good)
        assert clustering_balance(data, good) < clustering_balance(data, bad)

    def test_near_minimal_at_true_kappa(self):
        """Balance at the true kappa is essentially the curve minimum
        (ties with neighbouring kappa are possible on easy data)."""
        data = _blobs(3, per=25, seed=2)
        balances = {
            k: clustering_balance(data, kmeans_1d(data, k).labels)
            for k in range(2, 7)
        }
        assert balances[3] <= 1.05 * min(balances.values())
        assert balances[3] < 0.5 * balances[2]


class TestMCG:
    def test_knee_at_true_kappa(self):
        """The MCG curve rises steeply up to the true kappa and then
        plateaus (the paper's Figure 5 shape) — the true kappa attains
        essentially the maximum value."""
        data = _blobs(3, per=25, seed=3)
        mcgs = {
            k: moderated_clustering_gain(data, kmeans_1d(data, k).labels)
            for k in range(2, 8)
        }
        peak = max(mcgs.values())
        assert mcgs[3] >= 0.99 * peak  # true kappa is at the plateau
        assert mcgs[2] < 0.7 * mcgs[3]  # steep rise before the knee

    def test_moderation_never_exceeds_gain(self):
        """Theta2 in [0, 1] means MCG <= clustering gain."""
        data = np.random.default_rng(4).random(100)
        for k in (2, 5, 10):
            labels = kmeans_1d(data, k).labels
            assert moderated_clustering_gain(data, labels) <= clustering_gain(
                data, labels
            ) + 1e-9

    def test_nonnegative(self):
        data = np.random.default_rng(5).random(60)
        labels = kmeans_1d(data, 4).labels
        assert moderated_clustering_gain(data, labels) >= 0.0

    def test_tight_clusters_less_moderated(self):
        """Compact clusters keep more of their gain than loose ones."""
        tight = _blobs(2, per=20, spread=0.01, seed=6)
        loose = _blobs(2, per=20, spread=1.5, seed=6)
        labels = np.array([0] * 20 + [1] * 20)
        ratio_tight = moderated_clustering_gain(tight, labels) / clustering_gain(
            tight, labels
        )
        ratio_loose = moderated_clustering_gain(loose, labels) / clustering_gain(
            loose, labels
        )
        assert ratio_tight > ratio_loose


class TestScanKappa:
    def test_curve_recorded(self):
        data = _blobs(3, per=20)
        scan = scan_kappa(data, kappa_max=8)
        assert scan.kappas == list(range(2, 9))
        assert len(scan.mcg) == 7
        # the true kappa sits on the curve's plateau
        assert scan.mcg[scan.kappas.index(3)] >= 0.99 * scan.best_mcg
        assert scan.best_kappa >= 3

    def test_sampling(self):
        data = _blobs(3, per=100, seed=7)
        scan = scan_kappa(data, kappa_max=6, sample_size=60, seed=0)
        assert scan.sampled
        # the sample preserves the knee structure
        assert scan.mcg[scan.kappas.index(3)] >= 0.99 * scan.best_mcg

    def test_shortlist_threshold(self):
        data = _blobs(3, per=20)
        scan = scan_kappa(data, kappa_max=8)
        everything = scan.shortlist(0.0)
        assert everything == scan.kappas
        only_best = scan.shortlist(scan.best_mcg)
        assert scan.best_kappa in only_best

    def test_shortlist_fraction(self):
        data = _blobs(3, per=20)
        scan = scan_kappa(data, kappa_max=8)
        assert scan.best_kappa in scan.shortlist_fraction(1.0)
        with pytest.raises(ClusteringError):
            scan.shortlist_fraction(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            scan_kappa([1.0, 2.0])  # too few values
        with pytest.raises(ClusteringError):
            scan_kappa(_blobs(2), kappa_min=1)
        with pytest.raises(ClusteringError):
            scan_kappa(_blobs(2, per=5), kappa_max=3, sample_size=2)


class TestShortlistKappa:
    def test_returns_nonempty(self):
        data = _blobs(2, per=20)
        shortlisted, scan = shortlist_kappa(data, kappa_max=6)
        assert shortlisted
        assert set(shortlisted) <= set(scan.kappas)

    def test_absolute_threshold_respected(self):
        data = _blobs(2, per=20)
        shortlisted, scan = shortlist_kappa(
            data, epsilon_theta=scan_kappa(data, kappa_max=6).best_mcg / 2,
            kappa_max=6,
        )
        assert all(
            scan.mcg[scan.kappas.index(k)] >= scan.best_mcg / 2 for k in shortlisted
        )

    def test_impossible_threshold_falls_back_to_best(self):
        data = _blobs(2, per=20)
        shortlisted, scan = shortlist_kappa(
            data, epsilon_theta=1e12, kappa_max=6
        )
        assert shortlisted == [scan.best_kappa]
