"""Tests for bridges, articulation points and critical segments."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.critical import (
    articulation_points,
    bridges,
    critical_segments,
)


class TestBridges:
    def test_path_all_bridges(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        assert bridges(g.adjacency) == [(0, 1), (1, 2), (2, 3)]

    def test_cycle_no_bridges(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert bridges(g.adjacency) == []

    def test_two_cliques_bridge(self, two_cliques):
        assert bridges(two_cliques.adjacency) == [(3, 4)]

    def test_removal_disconnects(self, rng):
        """Every reported bridge, when removed, must disconnect."""
        from repro.graph.components import connected_components

        n = 15
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = rng.choice(len(possible), size=20, replace=False)
        edges = [possible[i] for i in chosen]
        g = Graph(n, edges=edges)
        base_comps = int(connected_components(g.adjacency).max()) + 1
        for u, v in bridges(g.adjacency):
            reduced = [(a, b) for a, b in edges if (a, b) != (u, v)]
            g2 = Graph(n, edges=reduced)
            comps = int(connected_components(g2.adjacency).max()) + 1
            assert comps == base_comps + 1

    def test_disconnected_graph(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        assert bridges(g.adjacency) == [(0, 1), (2, 3)]

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            bridges(np.zeros((2, 3)))


class TestArticulationPoints:
    def test_path_interior(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        np.testing.assert_array_equal(
            articulation_points(g.adjacency), [1, 2]
        )

    def test_cycle_none(self):
        g = Graph(5, edges=[(i, (i + 1) % 5) for i in range(5)])
        assert articulation_points(g.adjacency).size == 0

    def test_two_cliques_bridge_ends(self, two_cliques):
        np.testing.assert_array_equal(
            articulation_points(two_cliques.adjacency), [3, 4]
        )

    def test_star_centre(self):
        g = Graph(5, edges=[(0, i) for i in range(1, 5)])
        np.testing.assert_array_equal(articulation_points(g.adjacency), [0])

    def test_removal_splits(self, rng):
        from repro.graph.components import connected_components

        n = 12
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = rng.choice(len(possible), size=16, replace=False)
        edges = [possible[i] for i in chosen]
        g = Graph(n, edges=edges)
        base = int(connected_components(g.adjacency).max()) + 1
        for v in articulation_points(g.adjacency):
            keep = [u for u in range(n) if u != v]
            sub, __ = g.subgraph(keep)
            comps = int(connected_components(sub.adjacency).max()) + 1
            assert comps > base - 1  # strictly more pieces among the rest


class TestCriticalSegments:
    def test_global_equals_articulation(self, two_cliques):
        np.testing.assert_array_equal(
            critical_segments(two_cliques.adjacency),
            articulation_points(two_cliques.adjacency),
        )

    def test_per_partition(self):
        # two paths joined in a cycle: nothing global, but each
        # partition (half) has interior articulation nodes
        g = Graph(6, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        assert critical_segments(g.adjacency).size == 0
        labels = [0, 0, 0, 1, 1, 1]
        per_partition = critical_segments(g.adjacency, labels)
        np.testing.assert_array_equal(per_partition, [1, 4])

    def test_small_partitions_skipped(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        labels = [0, 0, 1, 1]  # both partitions of size 2
        assert critical_segments(g.adjacency, labels).size == 0

    def test_label_shape_checked(self, two_cliques):
        with pytest.raises(GraphError):
            critical_segments(two_cliques.adjacency, [0, 1])
