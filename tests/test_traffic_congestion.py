"""Tests for congestion-aware speeds and routing."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.traffic.congestion import (
    CongestionAwareRouter,
    congested_speeds,
    congested_travel_times,
)
from repro.traffic.routing import Router


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0, two_way=True)


class TestCongestedSpeeds:
    def test_free_flow_at_zero_density(self, network):
        speeds = congested_speeds(network, np.zeros(network.n_segments))
        expected = [seg.speed_limit for seg in network.segments]
        np.testing.assert_allclose(speeds, expected)

    def test_speed_drops_with_density(self, network):
        light = congested_speeds(network, np.full(network.n_segments, 0.02))
        heavy = congested_speeds(network, np.full(network.n_segments, 0.10))
        assert (heavy < light).all()

    def test_crawl_floor_at_jam(self, network):
        speeds = congested_speeds(network, np.full(network.n_segments, 0.20))
        limits = np.array([seg.speed_limit for seg in network.segments])
        np.testing.assert_allclose(speeds, limits * 0.05)

    def test_greenshields_linear(self, network):
        """Speed falls linearly: at half jam density, half free flow."""
        speeds = congested_speeds(network, np.full(network.n_segments, 0.075))
        limits = np.array([seg.speed_limit for seg in network.segments])
        np.testing.assert_allclose(speeds, limits * 0.5)

    def test_lanes_raise_effective_capacity(self):
        from repro.network.geometry import Point
        from repro.network.model import Intersection, RoadNetwork, RoadSegment

        net = RoadNetwork(
            [Intersection(0, Point(0, 0)), Intersection(1, Point(100, 0))],
            [
                RoadSegment(0, 0, 1, length=100.0, lanes=1),
                RoadSegment(1, 1, 0, length=100.0, lanes=2),
            ],
        )
        speeds = congested_speeds(net, [0.1, 0.1])
        assert speeds[1] > speeds[0]  # same density, more lanes -> faster

    def test_invalid_args(self, network):
        with pytest.raises(DataError):
            congested_speeds(network, [0.1])
        with pytest.raises(DataError):
            congested_speeds(
                network, np.zeros(network.n_segments), jam_density=0.0
            )
        with pytest.raises(DataError):
            congested_speeds(
                network, np.zeros(network.n_segments), min_fraction=0.0
            )


class TestCongestedTravelTimes:
    def test_times_increase_with_density(self, network):
        free = congested_travel_times(network, np.zeros(network.n_segments))
        jammed = congested_travel_times(
            network, np.full(network.n_segments, 0.12)
        )
        assert (jammed > free).all()

    def test_free_flow_matches_router_costs(self, network):
        times = congested_travel_times(network, np.zeros(network.n_segments))
        for seg in network.segments:
            assert times[seg.id] == pytest.approx(seg.length / seg.speed_limit)


class TestCongestionAwareRouter:
    def test_matches_free_flow_router_at_zero_density(self, network):
        aware = CongestionAwareRouter(network, np.zeros(network.n_segments))
        plain = Router(network, weight="time")
        __, aware_cost = aware.shortest_path(0, 15)
        __, plain_cost = plain.shortest_path(0, 15)
        assert aware_cost == pytest.approx(plain_cost)

    def test_routes_around_congestion(self, network):
        plain = Router(network, weight="time")
        path, __ = plain.shortest_path(0, 15)
        densities = np.zeros(network.n_segments)
        densities[path] = 0.145  # jam the free-flow route
        aware = CongestionAwareRouter(network, densities)
        new_path, __ = aware.shortest_path(0, 15)
        assert new_path != path  # detours

    def test_update_changes_costs(self, network):
        aware = CongestionAwareRouter(network, np.zeros(network.n_segments))
        __, before = aware.shortest_path(0, 15)
        aware.update(np.full(network.n_segments, 0.1))
        __, after = aware.shortest_path(0, 15)
        assert after > before

    def test_tree_consistent(self, network):
        aware = CongestionAwareRouter(
            network, np.full(network.n_segments, 0.05)
        )
        tree = aware.shortest_path_tree(0)
        __, cost = aware.shortest_path(0, 10)
        assert tree[10] == pytest.approx(cost)
