"""Tests for the Prometheus exposition layer and the monitoring session.

The exposition renderer is held to the text-format rules by the
package's own strict parser — every golden test round-trips through
``parse_prometheus`` — and the end-to-end test drives a real
``IncrementalRepartitioner`` under a ``MonitoringSession`` over five
density snapshots and scrapes the live ``/metrics`` endpoint the way a
Prometheus server would (the ISSUE-4 acceptance demo).
"""

import math
import urllib.request

import numpy as np
import pytest

from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.obs.export import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    MonitoringSession,
    escape_label_value,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.incremental import IncrementalRepartitioner
from repro.traffic.profiles import hotspot_profile


@pytest.fixture(scope="module")
def setup():
    network = grid_network(8, 8, two_way=True)
    graph = build_road_graph(network)
    base = hotspot_profile(network, n_hotspots=2, noise=0.0, seed=0)
    return network, graph, base


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_type(self):
        reg = MetricsRegistry()
        reg.inc("incremental.updates", 5)
        text = render_prometheus(reg)
        assert "# TYPE repro_incremental_updates_total counter" in text
        assert "repro_incremental_updates_total 5.0" in text

    def test_gauge_keeps_name(self):
        reg = MetricsRegistry()
        reg.set_gauge("graph.n_nodes", 144)
        text = render_prometheus(reg)
        assert "# TYPE repro_graph_n_nodes gauge" in text
        assert "repro_graph_n_nodes 144.0" in text

    def test_dots_sanitized_to_underscores(self):
        reg = MetricsRegistry()
        reg.inc("a.b-c.d e", 1)
        samples, __ = parse_prometheus(render_prometheus(reg))
        assert samples[0].name == "repro_a_b_c_d_e_total"

    def test_label_convention_parsed_out(self):
        reg = MetricsRegistry()
        reg.set_gauge("incremental.region_density[region=3]", 0.25)
        text = render_prometheus(reg)
        assert 'repro_incremental_region_density{region="3"} 0.25' in text

    def test_extra_labels_on_every_sample(self):
        reg = MetricsRegistry()
        reg.inc("x", 1)
        reg.set_gauge("y", 2)
        samples, __ = parse_prometheus(
            render_prometheus(reg, extra_labels={"run_id": "r-1"})
        )
        assert all(s.labels.get("run_id") == "r-1" for s in samples)

    def test_label_escaping_round_trips(self):
        value = 'quo"te\\back\nnewline'
        escaped = escape_label_value(value)
        assert "\n" not in escaped
        reg = MetricsRegistry()
        reg.set_gauge(f"weird[note={value}]", 1.0)
        # the renderer escapes; the parser must recover the original
        samples, __ = parse_prometheus(render_prometheus(reg))
        assert samples[0].labels["note"] == value

    def test_namespace_configurable(self):
        reg = MetricsRegistry()
        reg.inc("x", 1)
        text = render_prometheus(reg, namespace="urban")
        assert "urban_x_total" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_snapshot_dict_accepted(self):
        reg = MetricsRegistry()
        reg.inc("x", 2)
        assert render_prometheus(reg.to_dict()) == render_prometheus(reg)


class TestHistogramExposition:
    def test_buckets_cumulative_and_inf_equals_count(self):
        reg = MetricsRegistry()
        for value in (0.001, 0.5, 0.5, 3.0, 100.0):
            reg.observe("latency_s", value)
        text = render_prometheus(reg)
        samples, types = parse_prometheus(text)  # parser enforces cumulativity
        assert types["repro_latency_s"] == "histogram"
        buckets = [s for s in samples if s.name == "repro_latency_s_bucket"]
        counts = [s.value for s in buckets if s.labels["le"] != "+Inf"]
        assert counts == sorted(counts)
        inf = next(s for s in buckets if s.labels["le"] == "+Inf")
        count = next(s for s in samples if s.name == "repro_latency_s_count")
        assert inf.value == count.value == 5
        total = next(s for s in samples if s.name == "repro_latency_s_sum")
        assert total.value == pytest.approx(104.001)

    def test_nonpositive_values_in_le_zero_bucket(self):
        reg = MetricsRegistry()
        reg.observe("delta", -2.0)
        reg.observe("delta", 4.0)
        samples, __ = parse_prometheus(render_prometheus(reg))
        zero = next(
            s
            for s in samples
            if s.name == "repro_delta_bucket" and s.labels["le"] == "0.0"
        )
        assert zero.value == 1

    def test_broken_cumulativity_rejected(self):
        bad = (
            "# TYPE x histogram\n"
            'x_bucket{le="1.0"} 5\n'
            'x_bucket{le="2.0"} 3\n'
            'x_bucket{le="+Inf"} 5\n'
            "x_sum 1\n"
            "x_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prometheus(bad)

    def test_missing_inf_bucket_rejected(self):
        bad = "# TYPE x histogram\n" 'x_bucket{le="1.0"} 5\n' "x_count 5\nx_sum 2\n"
        with pytest.raises(ValueError, match="Inf"):
            parse_prometheus(bad)


class TestParser:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus("lonely_metric 1.0\n")

    def test_counter_without_total_rejected(self):
        with pytest.raises(ValueError, match="_total"):
            parse_prometheus("# TYPE foo counter\nfoo 1\n")

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("# TYPE x gauge\n0bad 1\n")

    def test_bad_escape_rejected(self):
        with pytest.raises(ValueError, match="escape"):
            parse_prometheus('# TYPE x gauge\nx{a="\\q"} 1\n')

    def test_special_values(self):
        text = "# TYPE x gauge\nx +Inf\n# TYPE y gauge\ny NaN\n"
        samples, __ = parse_prometheus(text)
        assert samples[0].value == math.inf
        assert math.isnan(samples[1].value)


class TestMetricsHTTPServer:
    def test_serves_metrics_and_404s_elsewhere(self):
        reg = MetricsRegistry()
        reg.inc("hits", 7)
        with MetricsHTTPServer(reg) as server:
            assert server.port not in (None, 0)
            response = urllib.request.urlopen(server.url, timeout=5)
            assert response.headers["Content-Type"] == CONTENT_TYPE
            samples, __ = parse_prometheus(response.read().decode())
            assert any(s.name == "repro_hits_total" and s.value == 7 for s in samples)
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/other", timeout=5)

    def test_scrapes_see_current_values(self):
        reg = MetricsRegistry()
        reg.inc("n", 1)
        with MetricsHTTPServer(reg) as server:
            urllib.request.urlopen(server.url, timeout=5).read()
            reg.inc("n", 1)
            body = urllib.request.urlopen(server.url, timeout=5).read().decode()
        samples, __ = parse_prometheus(body)
        assert next(s for s in samples if s.name == "repro_n_total").value == 2


class TestMonitoringSession:
    def test_end_to_end_five_snapshots_served_and_parsed(self, setup):
        """ISSUE-4 acceptance demo: live /metrics over >=5 snapshots."""
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.15, seed=0)
        rng = np.random.default_rng(0)
        with MonitoringSession(inc, serve=True) as session:
            session.bootstrap(base)
            densities = base
            for __i in range(5):
                densities = densities * rng.uniform(0.6, 1.8, size=densities.shape)
                report = session.update(densities)
                assert report.duration_s > 0
            body = urllib.request.urlopen(session.url, timeout=10).read().decode()
        samples, types = parse_prometheus(body)  # must obey the format rules
        names = {s.name for s in samples}
        # update latency histogram with 5 observations
        assert types["repro_incremental_update_latency_s"] == "histogram"
        count = next(
            s for s in samples if s.name == "repro_incremental_update_latency_s_count"
        )
        assert count.value == 5
        # churn counter and quality gauges present
        assert "repro_incremental_segments_relabelled_total" in names
        for quality in ("repro_quality_ans", "repro_quality_gdbi",
                        "repro_quality_max_conductance"):
            assert quality in names, names
        # per-region density gauges, labelled by region
        density = [s for s in samples if s.name == "repro_incremental_region_density"]
        assert len(density) >= 4
        assert all("region" in s.labels for s in density)
        # every sample carries the session's run id
        assert all(s.labels.get("run_id") for s in samples)

    def test_scrape_without_serving(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, staleness_threshold=0.2, seed=0)
        session = MonitoringSession(inc, serve=False)
        assert session.url is None
        session.bootstrap(base)
        session.update(base * 2.0)
        samples, __t = parse_prometheus(session.scrape())
        assert any(s.name == "repro_incremental_updates_total" for s in samples)

    def test_region_gauges_track_region_count(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.2, seed=0)
        session = MonitoringSession(inc, quality=False)
        session.bootstrap(base)
        snapshot = session.registry.to_dict()
        region_gauges = [
            name for name in snapshot["gauges"]
            if name.startswith("incremental.region_density")
        ]
        assert len(region_gauges) == int(inc.labels.max()) + 1

    def test_trace_spans_recorded_for_report(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, staleness_threshold=0.2, seed=0)
        session = MonitoringSession(inc, quality=False)
        session.bootstrap(base)
        session.update(base * 3.0)
        names = [span["name"] for span in session.obs.trace_tree()["spans"]]
        assert "monitor.bootstrap" in names
        assert "monitor.update" in names

    def test_write_report(self, setup, tmp_path):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, staleness_threshold=0.2, seed=0)
        session = MonitoringSession(inc, quality=False)
        session.bootstrap(base)
        session.update(base * 3.0)
        out = session.write_report(tmp_path / "report.html")
        doc = out.read_text(encoding="utf-8")
        assert doc.startswith("<!DOCTYPE html>")
        assert "monitor.update" in doc


class TestQuantilesFromLatencies:
    def test_multi_quantile_matches_single(self):
        from repro.obs.export import (
            quantile_from_latencies,
            quantiles_from_latencies,
        )

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        multi = quantiles_from_latencies(values, (0.0, 0.5, 0.9, 1.0))
        assert multi == [
            quantile_from_latencies(values, q) for q in (0.0, 0.5, 0.9, 1.0)
        ]
        assert multi == [1.0, 3.0, 5.0, 5.0]

    def test_empty_values_give_zeros(self):
        from repro.obs.export import quantiles_from_latencies

        assert quantiles_from_latencies([], (0.5, 0.99)) == [0.0, 0.0]

    def test_out_of_range_quantile_rejected(self):
        from repro.obs.export import quantiles_from_latencies

        with pytest.raises(ValueError):
            quantiles_from_latencies([1.0], (1.5,))
        with pytest.raises(ValueError):
            quantiles_from_latencies([1.0], (-0.1,))

    def test_unsorted_input_handled(self):
        from repro.obs.export import quantiles_from_latencies

        assert quantiles_from_latencies([9.0, 1.0], (0.5,)) == [1.0]


class TestMetricsHTTPServer404Body:
    def test_404_carries_a_json_body(self):
        """Regression: the 404 path used to send headers with no body,
        leaving clients that trust Content-Type hanging on an empty
        document."""
        import json as _json

        reg = MetricsRegistry()
        with MetricsHTTPServer(reg) as server:
            base = server.url.rsplit("/", 1)[0]
            try:
                urllib.request.urlopen(base + "/nope", timeout=5)
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as err:
                assert err.code == 404
                body = _json.loads(err.read())
                assert body["status"] == 404
                assert "metrics" in body["error"]
                assert err.headers["Content-Type"].startswith("application/json")
