"""Tests for boundary analysis."""

import numpy as np
import pytest

from repro.analysis.boundary import (
    boundary_segments,
    boundary_sharpness,
    partition_neighbors,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestBoundarySegments:
    def test_chain_boundary(self, chain):
        labels = [0, 0, 0, 1, 1, 1]
        np.testing.assert_array_equal(
            boundary_segments(chain.adjacency, labels), [2, 3]
        )

    def test_no_boundary_single_partition(self, chain):
        assert boundary_segments(chain.adjacency, [0] * 6).size == 0

    def test_all_boundary_when_alternating(self, chain):
        labels = [0, 1, 0, 1, 0, 1]
        assert boundary_segments(chain.adjacency, labels).size == 6

    def test_shape_checked(self, chain):
        with pytest.raises(PartitioningError):
            boundary_segments(chain.adjacency, [0, 1])


class TestPartitionNeighbors:
    def test_chain_three_partitions(self, chain):
        labels = [0, 0, 1, 1, 2, 2]
        neigh = partition_neighbors(chain.adjacency, labels)
        assert neigh == {0: [1], 1: [0, 2], 2: [1]}

    def test_isolated_partition(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        neigh = partition_neighbors(g.adjacency, [0, 0, 1, 1])
        assert neigh == {0: [], 1: []}


class TestBoundarySharpness:
    def test_step_boundary(self, chain):
        feats = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        sharp = boundary_sharpness(feats, [0, 0, 0, 1, 1, 1], chain.adjacency)
        assert sharp == {(0, 1): pytest.approx(1.0)}

    def test_flat_boundary_zero(self, chain):
        feats = [0.5] * 6
        sharp = boundary_sharpness(feats, [0, 0, 0, 1, 1, 1], chain.adjacency)
        assert sharp[(0, 1)] == pytest.approx(0.0)

    def test_multiple_boundaries(self, chain):
        feats = [0.0, 0.0, 1.0, 1.0, 3.0, 3.0]
        sharp = boundary_sharpness(
            feats, [0, 0, 1, 1, 2, 2], chain.adjacency
        )
        assert sharp[(0, 1)] == pytest.approx(1.0)
        assert sharp[(1, 2)] == pytest.approx(2.0)

    def test_averages_over_links(self):
        # two links cross the boundary with different steps
        g = Graph(4, edges=[(0, 2), (1, 3), (0, 1), (2, 3)])
        feats = [0.0, 0.0, 1.0, 3.0]
        sharp = boundary_sharpness(feats, [0, 0, 1, 1], g.adjacency)
        assert sharp[(0, 1)] == pytest.approx(2.0)  # (1 + 3) / 2

    def test_feature_shape_checked(self, chain):
        with pytest.raises(PartitioningError):
            boundary_sharpness([0.0, 1.0], [0] * 6, chain.adjacency)
