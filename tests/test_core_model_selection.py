"""Tests for k-selection utilities."""

import numpy as np
import pytest

from repro.core.model_selection import (
    KSelection,
    select_k_by_ans,
    select_k_by_eigengap,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


def _blocky_graph(n_blocks=3, per=8, seed=0):
    """n_blocks dense blocks weakly chained together, with per-block
    distinct densities — the planted k is n_blocks."""
    rng = np.random.default_rng(seed)
    n = n_blocks * per
    edges = []
    for b in range(n_blocks):
        base = b * per
        for i in range(per):
            for j in range(i + 1, per):
                if rng.random() < 0.8:
                    edges.append((base + i, base + j, 1.0))
    for b in range(n_blocks - 1):
        edges.append(((b + 1) * per - 1, (b + 1) * per, 0.05))
    feats = np.concatenate(
        [np.full(per, 0.02 + 0.05 * b) for b in range(n_blocks)]
    )
    return Graph(n, edges=edges, features=feats)


class TestSelectKByAns:
    def test_scores_all_k(self):
        g = _blocky_graph()
        selection = select_k_by_ans(g, k_range=range(2, 6), seed=0)
        assert set(selection.scores) == {2, 3, 4, 5}
        assert selection.best_k in selection.scores

    def test_best_k_minimises(self):
        g = _blocky_graph()
        selection = select_k_by_ans(g, k_range=range(2, 6), seed=0)
        assert selection.scores[selection.best_k] == min(
            selection.scores.values()
        )

    def test_candidates_are_local_minima(self):
        g = _blocky_graph()
        selection = select_k_by_ans(g, k_range=range(2, 8), seed=0)
        ks = sorted(selection.scores)
        for k in selection.candidates:
            idx = ks.index(k)
            assert 0 < idx < len(ks) - 1
            assert selection.scores[k] <= selection.scores[ks[idx - 1]]
            assert selection.scores[k] <= selection.scores[ks[idx + 1]]

    def test_empty_range_rejected(self):
        with pytest.raises(PartitioningError):
            select_k_by_ans(_blocky_graph(), k_range=[])

    def test_bad_n_runs_rejected(self):
        with pytest.raises(PartitioningError):
            select_k_by_ans(_blocky_graph(), n_runs=0)


class TestSelectKByEigengap:
    def test_recovers_planted_blocks(self):
        g = _blocky_graph(n_blocks=3, per=8)
        selection = select_k_by_eigengap(g, k_max=8)
        assert selection.best_k == 3

    def test_two_cliques(self, two_cliques):
        selection = select_k_by_eigengap(two_cliques, k_max=5)
        assert selection.best_k == 2

    def test_scores_cover_range(self):
        g = _blocky_graph()
        selection = select_k_by_eigengap(g, k_min=2, k_max=6)
        assert set(selection.scores) == {2, 3, 4, 5, 6}

    def test_without_affinity(self, two_cliques):
        selection = select_k_by_eigengap(
            two_cliques, k_max=5, use_affinity=False
        )
        assert selection.best_k == 2

    def test_invalid_range(self, two_cliques):
        with pytest.raises(PartitioningError):
            select_k_by_eigengap(two_cliques, k_min=5, k_max=3)
        with pytest.raises(PartitioningError):
            select_k_by_eigengap(two_cliques, k_max=100)
