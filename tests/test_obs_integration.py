"""End-to-end observability: a full framework run emits a coherent
trace tree, a non-empty metrics dump, run-scoped logs and a manifest."""

import json
import logging

import pytest

from repro import ObsContext, SpatialPartitioningFramework, observe_run, small_network
from repro.obs import validate_chrome_trace
from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION
from repro.pipeline.persistence import result_from_dict, result_to_dict
from repro.pipeline.schemes import run_scheme


@pytest.fixture(scope="module")
def observed_run():
    network, densities = small_network(seed=7)
    obs = ObsContext(dataset="small", scheme="ASG")
    framework = SpatialPartitioningFramework(k=4, scheme="ASG", seed=7, obs=obs)
    result = framework.partition(network, densities)
    return obs, framework, result


class TestTraceTree:
    def test_run_span_contains_modules(self, observed_run):
        obs, __, __r = observed_run
        tree = obs.trace_tree()
        assert [s["name"] for s in tree["spans"]] == ["run"]
        run = tree["spans"][0]
        child_names = [c["name"] for c in run["children"]]
        assert child_names == ["module1", "module2", "module3"]
        assert run["attrs"]["scheme"] == "ASG"
        assert run["attrs"]["k"] == 4

    def test_module2_has_fine_grained_children(self, observed_run):
        obs, __, __r = observed_run
        run = obs.trace_tree()["spans"][0]
        module2 = next(c for c in run["children"] if c["name"] == "module2")
        grandchildren = {g["name"] for g in module2.get("children", [])}
        # the builder's ModuleTimer sub-timings nest under module2
        assert any(name.startswith("module2.") for name in grandchildren)

    def test_chrome_trace_is_valid_and_serialisable(self, observed_run):
        obs, __, __r = observed_run
        doc = obs.chrome_trace()
        validate_chrome_trace(doc)
        json.dumps(doc)  # must round-trip without custom encoders
        assert doc["otherData"]["run_id"] == obs.run_id
        assert doc["otherData"]["dataset"] == "small"

    def test_durations_nest_within_parents(self, observed_run):
        obs, __, __r = observed_run
        run = obs.trace_tree()["spans"][0]
        child_total = sum(c["duration_s"] for c in run["children"])
        assert child_total <= run["duration_s"] * 1.01 + 1e-6


class TestMetricsDump:
    def test_core_counter_families_present(self, observed_run):
        obs, __, __r = observed_run
        counters = obs.metrics_dict()["counters"]
        assert counters["kappa_scan.candidates"] > 0
        assert counters["kmeans1d.iterations"] > 0
        assert counters["supergraph.builds"] == 1
        assert counters["eigensolver.dense_calls"] + counters.get(
            "eigensolver.lanczos_calls", 0
        ) + counters.get("eigensolver.arpack_calls", 0) > 0

    def test_gauges_reflect_run_shape(self, observed_run):
        obs, framework, __r = observed_run
        gauges = obs.metrics_dict()["gauges"]
        assert gauges["graph.n_nodes"] == framework.last_road_graph.n_nodes
        assert gauges["supergraph.n_supernodes"] >= 1
        assert gauges["kappa_scan.best_kappa"] >= 2

    def test_write_metrics_payload(self, observed_run, tmp_path):
        obs, framework, __r = observed_run
        path = obs.write_metrics(
            tmp_path / "metrics.json", config=framework.config_dict(), seed=7
        )
        payload = json.loads(path.read_text())
        assert payload["run_id"] == obs.run_id
        assert payload["manifest"]["config"]["scheme"] == "ASG"
        assert payload["metrics"]["counters"]


class TestManifest:
    def test_result_carries_manifest(self, observed_run):
        obs, __, result = observed_run
        manifest = result.manifest
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["run_id"] == obs.run_id
        assert manifest["seed"] == 7
        assert manifest["config"]["k"] == 4
        assert "python" in manifest["versions"]
        assert "numpy" in manifest["versions"]

    def test_manifest_without_obs(self):
        network, densities = small_network(seed=3)
        framework = SpatialPartitioningFramework(k=3, scheme="AG", seed=3)
        result = framework.partition(network, densities)
        assert result.manifest is not None
        assert result.manifest["config"]["scheme"] == "AG"
        # a run id is still generated so the manifest is self-contained
        assert result.manifest["run_id"]

    def test_manifest_round_trips_persistence(self, observed_run):
        __, __f, result = observed_run
        restored = result_from_dict(result_to_dict(result))
        assert restored.manifest == result.manifest


class TestObserveRunHelper:
    def test_ad_hoc_observation(self):
        from repro.network.dual import build_road_graph

        network, densities = small_network(seed=5)
        graph = build_road_graph(network).with_features(densities)
        with observe_run(dataset="small", scheme="AG", note="adhoc") as obs:
            run_scheme("AG", graph, 3, seed=5)
        assert obs.metrics_dict()["gauges"]["graph.n_nodes"] == graph.n_nodes
        assert obs.chrome_trace()["otherData"]["note"] == "adhoc"


class TestLogging:
    def test_log_records_carry_run_context(self):
        import io

        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        try:
            with observe_run(dataset="D-test", scheme="NSG") as obs:
                get_logger("test").info("hello from the run")
            text = stream.getvalue()
            assert "hello from the run" in text
            assert obs.run_id in text
            assert "D-test" in text
        finally:
            configure_logging(level="warning")  # restore a quiet default

    def test_configure_logging_is_idempotent(self):
        configure_logging(level="warning")
        configure_logging(level="warning")
        root = logging.getLogger("repro")
        marked = [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
