"""Tests for spectral modularity and its duality with alpha-Cut."""

import numpy as np
import pytest

from repro.baselines.modularity import (
    modularity_value,
    spectral_modularity_partition,
)
from repro.core.spectral import spectral_partition
from repro.exceptions import PartitioningError


class TestModularityValue:
    def test_good_split_positive(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        assert modularity_value(two_cliques.adjacency, labels) > 0.3

    def test_single_partition_zero(self, two_cliques):
        labels = np.zeros(8, dtype=int)
        assert modularity_value(two_cliques.adjacency, labels) == pytest.approx(
            0.0
        )

    def test_bounded_above_by_one(self, two_cliques, rng):
        for __ in range(5):
            labels = rng.integers(0, 3, size=8)
            __, labels = np.unique(labels, return_inverse=True)
            assert modularity_value(two_cliques.adjacency, labels) <= 1.0

    def test_empty_graph_zero(self):
        import scipy.sparse as sp

        assert modularity_value(sp.csr_matrix((3, 3)), [0, 0, 1]) == 0.0

    def test_shape_checked(self, two_cliques):
        with pytest.raises(PartitioningError):
            modularity_value(two_cliques.adjacency, [0])


class TestSpectralModularityPartition:
    def test_separates_cliques(self, two_cliques):
        labels = spectral_modularity_partition(two_cliques.adjacency, 2, seed=0)
        assert labels[0] == labels[3]
        assert labels[0] != labels[4]

    def test_same_partition_as_alpha_cut(self, two_cliques):
        """The paper's equivalence: B = -M implies the same embedding
        hence the same partitioning for a clean two-cluster graph."""
        mod = spectral_modularity_partition(two_cliques.adjacency, 2, seed=0)
        alpha = spectral_partition(two_cliques.adjacency, 2, seed=0)
        # identical up to label permutation
        agreement = max(
            (mod == alpha).mean(), (mod == 1 - alpha).mean()
        )
        assert agreement == 1.0

    def test_k_one(self, two_cliques):
        labels = spectral_modularity_partition(two_cliques.adjacency, 1)
        assert labels.max() == 0

    def test_invalid_k(self, two_cliques):
        with pytest.raises(PartitioningError):
            spectral_modularity_partition(two_cliques.adjacency, 0)
