"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.tracking import churn, match_partitions
from repro.baselines.kernighan_lin import cut_weight, kernighan_lin_refine
from repro.graph.adjacency import Graph
from repro.metrics.conductance import conductance, expansion
from repro.traffic.smoothing import (
    exponential_smoothing,
    interval_aggregate,
    moving_average,
)

label_vectors = st.lists(st.integers(0, 3), min_size=2, max_size=30).map(
    lambda xs: np.unique(xs, return_inverse=True)[1]
)

series_arrays = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 16), st.integers(1, 5)),
    elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)


@st.composite
def graph_and_bipartition(draw):
    n = draw(st.integers(4, 12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=1, unique=True)
    )
    edges = [(u, v, 1.0) for u, v in chosen]
    bits = draw(
        st.lists(st.integers(0, 1), min_size=n, max_size=n).filter(
            lambda xs: 0 < sum(xs) < len(xs)
        )
    )
    return Graph(n, edges=edges), np.asarray(bits, dtype=int)


class TestTrackingProperties:
    @given(labels=label_vectors)
    @settings(max_examples=50, deadline=None)
    def test_matching_to_self_is_identity(self, labels):
        np.testing.assert_array_equal(match_partitions(labels, labels), labels)

    @given(labels=label_vectors, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_permutation_recovered(self, labels, data):
        k = int(labels.max()) + 1
        perm = data.draw(st.permutations(range(k)))
        permuted = np.asarray([perm[v] for v in labels])
        matched = match_partitions(labels, permuted)
        np.testing.assert_array_equal(matched, labels)

    @given(labels=label_vectors)
    @settings(max_examples=30, deadline=None)
    def test_churn_bounds(self, labels):
        assert churn(labels, labels) == 0.0
        flipped = labels.max() - labels
        assert 0.0 <= churn(labels, flipped) <= 1.0


class TestKernighanLinProperties:
    @given(data=graph_and_bipartition())
    @settings(max_examples=40, deadline=None)
    def test_cut_never_increases(self, data):
        graph, labels = data
        before = cut_weight(graph.adjacency, labels)
        refined = kernighan_lin_refine(graph.adjacency, labels)
        assert cut_weight(graph.adjacency, refined) <= before + 1e-9

    @given(data=graph_and_bipartition())
    @settings(max_examples=40, deadline=None)
    def test_sides_stay_nonempty(self, data):
        graph, labels = data
        refined = kernighan_lin_refine(graph.adjacency, labels)
        assert 0 < refined.sum() < refined.size


class TestConductanceProperties:
    @given(data=graph_and_bipartition())
    @settings(max_examples=40, deadline=None)
    def test_conductance_in_unit_interval(self, data):
        graph, labels = data
        for value in conductance(graph.adjacency, labels):
            assert 0.0 <= value <= 1.0 + 1e-12

    @given(data=graph_and_bipartition())
    @settings(max_examples=40, deadline=None)
    def test_expansion_nonnegative(self, data):
        graph, labels = data
        assert all(v >= 0 for v in expansion(graph.adjacency, labels))


class TestSmoothingProperties:
    @given(series=series_arrays, window=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_moving_average_bounded_by_extremes(self, series, window):
        out = moving_average(series, window)
        assert out.min() >= series.min() - 1e-9
        assert out.max() <= series.max() + 1e-9

    @given(series=series_arrays, alpha=st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_ewma_bounded_by_extremes(self, series, alpha):
        out = exponential_smoothing(series, alpha)
        assert out.min() >= series.min() - 1e-9
        assert out.max() <= series.max() + 1e-9

    @given(series=series_arrays)
    @settings(max_examples=40, deadline=None)
    def test_aggregate_preserves_mean(self, series):
        t = series.shape[0]
        factor = 2 if t % 2 == 0 else 1
        out = interval_aggregate(series, factor)
        assert out.mean() == pytest.approx(series.mean(), abs=1e-9)
