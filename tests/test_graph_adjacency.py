"""Tests for repro.graph.adjacency.Graph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n_nodes == 0
        assert g.n_edges == 0

    def test_basic_edges(self):
        g = Graph(3, edges=[(0, 1), (1, 2)])
        assert g.n_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)  # undirected
        assert not g.has_edge(0, 2)

    def test_weighted_edges(self):
        g = Graph(2, edges=[(0, 1, 0.5)])
        assert g.edge_weight(0, 1) == 0.5

    def test_duplicate_edges_merge_by_sum(self):
        g = Graph(2, edges=[(0, 1, 0.5), (0, 1, 0.25)])
        assert g.edge_weight(0, 1) == 0.75
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(2, edges=[(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(2, edges=[(0, 5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError, match="negative weight"):
            Graph(2, edges=[(0, 1, -1.0)])

    def test_negative_n_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, edges=[(0, 1, 2, 3)])

    def test_features_default_zero(self):
        g = Graph(3)
        np.testing.assert_array_equal(g.features, np.zeros(3))

    def test_features_stored(self):
        g = Graph(2, features=[1.5, 2.5])
        np.testing.assert_array_equal(g.features, [1.5, 2.5])

    def test_features_wrong_shape_rejected(self):
        with pytest.raises(GraphError, match="shape"):
            Graph(2, features=[1.0])

    def test_features_readonly(self):
        g = Graph(2, features=[1.0, 2.0])
        with pytest.raises(ValueError):
            g.features[0] = 9.0


class TestFromAdjacency:
    def test_round_trip(self):
        g = Graph(3, edges=[(0, 1, 2.0), (1, 2, 3.0)])
        g2 = Graph.from_adjacency(g.adjacency, features=g.features)
        assert g2.n_edges == 2
        assert g2.edge_weight(1, 2) == 3.0

    def test_dense_input(self):
        adj = np.array([[0, 1], [1, 0]], dtype=float)
        g = Graph.from_adjacency(adj)
        assert g.n_edges == 1

    def test_asymmetric_rejected(self):
        adj = np.array([[0, 1], [0, 0]], dtype=float)
        with pytest.raises(GraphError, match="symmetric"):
            Graph.from_adjacency(adj)

    def test_diagonal_stripped(self):
        adj = np.array([[2.0, 1.0], [1.0, 0.0]])
        g = Graph.from_adjacency(adj)
        assert g.edge_weight(0, 0) == 0.0
        assert g.n_edges == 1

    def test_negative_rejected(self):
        adj = np.array([[0, -1.0], [-1.0, 0]])
        with pytest.raises(GraphError, match="non-negative"):
            Graph.from_adjacency(adj)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            Graph.from_adjacency(np.zeros((2, 3)))


class TestQueries:
    def test_degree(self):
        g = Graph(3, edges=[(0, 1, 2.0), (0, 2, 3.0)])
        np.testing.assert_array_equal(g.degree(), [5.0, 2.0, 3.0])

    def test_neighbors(self):
        g = Graph(4, edges=[(0, 1), (0, 2)])
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(3).size == 0

    def test_neighbors_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2).neighbors(5)

    def test_edges_iteration_once_per_edge(self):
        g = Graph(3, edges=[(0, 1, 2.0), (1, 2, 3.0)])
        edges = list(g.edges())
        assert edges == [(0, 1, 2.0), (1, 2, 3.0)]

    def test_total_weight(self):
        g = Graph(3, edges=[(0, 1, 2.0), (1, 2, 3.0)])
        assert g.total_weight() == 5.0

    def test_repr(self):
        assert "n_nodes=3" in repr(Graph(3))


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)], features=[0, 1, 2, 3])
        sub, idx = g.subgraph([1, 2])
        assert sub.n_nodes == 2
        assert sub.has_edge(0, 1)
        np.testing.assert_array_equal(idx, [1, 2])
        np.testing.assert_array_equal(sub.features, [1.0, 2.0])

    def test_subgraph_drops_external_edges(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        sub, __ = g.subgraph([0, 3])
        assert sub.n_edges == 0

    def test_duplicate_nodes_rejected(self):
        g = Graph(3, edges=[(0, 1)])
        with pytest.raises(GraphError, match="unique"):
            g.subgraph([0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(3).subgraph([5])

    def test_with_features(self):
        g = Graph(2, edges=[(0, 1)])
        g2 = g.with_features([3.0, 4.0])
        np.testing.assert_array_equal(g2.features, [3.0, 4.0])
        assert g2.n_edges == 1
