"""Tests for C.1/C.2 validation."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.validation import (
    check_connectivity,
    check_cover,
    validate_partitioning,
)


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestCheckCover:
    def test_valid(self):
        assert check_cover([0, 1, 1, 0], 4) == 2

    def test_gap_rejected(self):
        with pytest.raises(PartitioningError, match="gaps"):
            check_cover([0, 2, 2, 0], 4)

    def test_negative_rejected(self):
        with pytest.raises(PartitioningError):
            check_cover([0, -1], 2)

    def test_shape_rejected(self):
        with pytest.raises(PartitioningError):
            check_cover([0, 1], 3)

    def test_empty_rejected(self):
        with pytest.raises(PartitioningError):
            check_cover([], 0)


class TestCheckConnectivity:
    def test_connected_partitions_pass(self, chain):
        assert check_connectivity(chain.adjacency, [0, 0, 0, 1, 1, 1]) == []

    def test_disconnected_partition_reported(self, chain):
        # partition 0 = {0, 5}: not adjacent
        violations = check_connectivity(chain.adjacency, [0, 1, 1, 1, 1, 0])
        assert violations == [0]

    def test_singletons_connected(self, chain):
        assert check_connectivity(chain.adjacency, [0, 1, 2, 3, 4, 5]) == []


class TestValidatePartitioning:
    def test_valid_result(self, chain):
        validation = validate_partitioning(chain.adjacency, [0, 0, 1, 1, 2, 2])
        assert validation.is_valid
        assert validation.k == 3
        assert validation.sizes == [2, 2, 2]

    def test_invalid_result(self, chain):
        validation = validate_partitioning(chain.adjacency, [0, 1, 0, 1, 0, 1])
        assert not validation.is_valid
        assert set(validation.disconnected) == {0, 1}
