"""Tests for the end-to-end SpatialPartitioningFramework."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.network.generators import grid_network
from repro.pipeline.framework import SpatialPartitioningFramework
from repro.traffic.profiles import hotspot_profile


@pytest.fixture(scope="module")
def network():
    return grid_network(6, 6, two_way=True)


@pytest.fixture(scope="module")
def densities(network):
    return hotspot_profile(network, n_hotspots=2, seed=0)


class TestFramework:
    def test_end_to_end(self, network, densities):
        fw = SpatialPartitioningFramework(k=4, scheme="ASG", seed=0)
        result = fw.partition(network, densities)
        assert result.k == 4
        assert result.labels.shape == (network.n_segments,)

    def test_all_three_modules_timed(self, network, densities):
        fw = SpatialPartitioningFramework(k=3, scheme="ASG", seed=0)
        result = fw.partition(network, densities)
        assert {"module1", "module2", "module3"} <= set(result.timings)
        # any extra keys are fine-grained sub-timings of a module
        extras = set(result.timings) - {"module1", "module2", "module3"}
        assert all(name.startswith(("module1.", "module2.", "module3.")) for name in extras)
        assert result.total_time > 0

    def test_uses_network_densities_by_default(self, network, densities):
        network.set_densities(densities)
        fw = SpatialPartitioningFramework(k=3, scheme="ASG", seed=0)
        result = fw.partition(network)
        np.testing.assert_allclose(fw.last_road_graph.features, densities)

    def test_density_override(self, network, densities):
        fw = SpatialPartitioningFramework(k=3, scheme="ASG", seed=0)
        override = densities * 2.0
        fw.partition(network, override)
        np.testing.assert_allclose(fw.last_road_graph.features, override)

    def test_partition_graph_skips_module1(self, network, densities):
        from repro.network.dual import build_road_graph

        graph = build_road_graph(network).with_features(densities)
        fw = SpatialPartitioningFramework(k=3, scheme="ASG", seed=0)
        result = fw.partition_graph(graph)
        assert "module1" not in result.timings
        assert result.k == 3

    def test_evaluation_metrics(self, network, densities):
        fw = SpatialPartitioningFramework(k=4, scheme="ASG", seed=0)
        result = fw.partition(network, densities)
        metrics = result.evaluate(fw.last_road_graph)
        assert set(metrics) == {"k", "inter", "intra", "gdbi", "ans"}
        assert metrics["k"] == 4

    def test_result_validates(self, network, densities):
        fw = SpatialPartitioningFramework(k=4, scheme="ASG", seed=0)
        result = fw.partition(network, densities)
        assert result.validate(fw.last_road_graph).is_valid

    def test_invalid_scheme(self):
        with pytest.raises(PartitioningError):
            SpatialPartitioningFramework(k=3, scheme="nonsense")

    def test_invalid_k(self):
        with pytest.raises(PartitioningError):
            SpatialPartitioningFramework(k=0)

    def test_reproducible(self, network, densities):
        a = SpatialPartitioningFramework(k=4, scheme="ASG", seed=3).partition(
            network, densities
        )
        b = SpatialPartitioningFramework(k=4, scheme="ASG", seed=3).partition(
            network, densities
        )
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_partition_sizes_sum(self, network, densities):
        fw = SpatialPartitioningFramework(k=4, scheme="ASG", seed=0)
        result = fw.partition(network, densities)
        assert result.partition_sizes().sum() == network.n_segments
