"""Tests for benchmark history and regression gating (`repro.obs.bench`)."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    Comparison,
    append_history,
    compare_latest,
    flatten_numeric,
    history_record,
    load_history,
    machine_fingerprint,
    value_direction,
)
from repro.obs.manifest import run_manifest


def _payload(seconds, speedup=10.0):
    return {"dual": {"vectorized_s": seconds, "speedup": speedup, "n_edges": 100}}


class TestFlatten:
    def test_nested_dotted_keys(self):
        flat = flatten_numeric({"a": {"b": 1.5, "c": {"d": 2}}, "e": 3})
        assert flat == {"a.b": 1.5, "a.c.d": 2.0, "e": 3.0}

    def test_non_numeric_and_provenance_dropped(self):
        flat = flatten_numeric(
            {"name": "x", "ok": True, "provenance": {"t_s": 9.0}, "v_s": 1.0}
        )
        assert flat == {"v_s": 1.0}

    def test_direction_heuristics(self):
        assert value_direction("dual.vectorized_s") == "lower"
        assert value_direction("full.seconds") == "lower"
        assert value_direction("total_time") == "lower"
        assert value_direction("dual.speedup") == "higher"
        assert value_direction("n_segments") is None
        assert value_direction("best_kappa") is None

    def test_reference_timings_never_gated(self):
        # reference implementations are kept deliberately slow; their
        # wall time is informational, only the speedup ratio gates
        assert value_direction("scan.reference_s") is None
        assert value_direction("nd.reference_broadcast_s") is None


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = append_history("bench_a", _payload(1.0), path=path)
        assert record["bench"] == "bench_a"
        assert record["values"]["dual.vectorized_s"] == 1.0
        assert record["manifest"]["schema_version"] >= 1
        records, corrupt = load_history(path)
        assert corrupt == 0
        assert len(records) == 1
        assert records[0]["fingerprint"] == machine_fingerprint(record["manifest"])

    def test_missing_file_is_empty_history(self, tmp_path):
        records, corrupt = load_history(tmp_path / "nope.jsonl")
        assert records == [] and corrupt == 0

    def test_corrupt_lines_tolerated(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history("bench_a", _payload(1.0), path=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated by a kill -9\n")
            fh.write('"a json string, not an object"\n')
            fh.write('{"no_bench_key": 1}\n')
        append_history("bench_a", _payload(1.1), path=path)
        records, corrupt = load_history(path)
        assert len(records) == 2
        assert corrupt == 3

    def test_record_uses_payload_provenance(self):
        manifest = run_manifest(extra={"bench": "b"})
        payload = dict(_payload(1.0), provenance=manifest)
        record = history_record("b", payload)
        assert record["manifest"] is manifest
        assert "provenance" not in record["values"]


class TestCompare:
    def _history(self, path, seconds_list, bench="bench_a"):
        for seconds in seconds_list:
            append_history(bench, _payload(seconds), path=path)
        records, __ = load_history(path)
        return records

    def test_no_regression_on_stable_timings(self, tmp_path):
        records = self._history(tmp_path / "h.jsonl", [1.0, 1.05, 0.95, 1.02])
        summary = compare_latest(records)
        assert summary.ok
        keys = {c.key for c in summary.comparisons}
        assert keys == {"dual.vectorized_s", "dual.speedup"}
        assert all(c.method.startswith("median-of") for c in summary.comparisons)

    def test_injected_slowdown_flagged(self, tmp_path):
        records = self._history(tmp_path / "h.jsonl", [1.0, 1.05, 0.95, 3.0])
        summary = compare_latest(records, tolerance=0.25)
        assert not summary.ok
        regression = summary.regressions[0]
        assert regression.key == "dual.vectorized_s"
        assert regression.direction == "lower"
        assert regression.ratio > 2.5

    def test_speedup_drop_flagged(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for speedup in (10.0, 11.0, 10.5):
            append_history("b", _payload(1.0, speedup=speedup), path=path)
        append_history("b", _payload(1.0, speedup=4.0), path=path)
        records, __ = load_history(path)
        summary = compare_latest(records)
        assert [c.key for c in summary.regressions] == ["dual.speedup"]

    def test_short_history_uses_best_of_n(self, tmp_path):
        # one noisy-slow prior run + one fast: best-of-N gates against
        # the fast one
        records = self._history(tmp_path / "h.jsonl", [2.0, 1.0, 1.1])
        summary = compare_latest(records, min_history=3)
        timing = next(c for c in summary.comparisons if c.key == "dual.vectorized_s")
        assert timing.method == "best-of-2"
        assert timing.baseline == 1.0
        assert not timing.regressed  # 1.1 within 25% of 1.0

    def test_single_record_groups_skipped(self, tmp_path):
        records = self._history(tmp_path / "h.jsonl", [1.0])
        summary = compare_latest(records)
        assert summary.comparisons == []
        assert summary.skipped_benches == ["bench_a"]

    def test_groups_isolated_by_bench(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for seconds in (1.0, 1.0, 1.0):
            append_history("fast_bench", _payload(seconds), path=path)
        append_history("slow_bench", _payload(9.0), path=path)
        append_history("slow_bench", _payload(9.1), path=path)
        records, __ = load_history(path)
        summary = compare_latest(records)
        assert summary.ok  # slow_bench is only compared to itself
        summary_one = compare_latest(records, bench="slow_bench")
        assert {c.bench for c in summary_one.comparisons} == {"slow_bench"}

    def test_tolerance_band_respected(self, tmp_path):
        records = self._history(tmp_path / "h.jsonl", [1.0, 1.0, 1.0, 1.2])
        assert compare_latest(records, tolerance=0.25).ok
        assert not compare_latest(records, tolerance=0.1).ok

    def test_fingerprint_groups_machines_apart(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history("b", _payload(1.0), path=path)
        append_history("b", _payload(1.0), path=path)
        records, __ = load_history(path)
        # fake a different machine for the newest, slower record
        slow = history_record("b", _payload(9.0))
        slow["fingerprint"] = "other-machine"
        records.append(slow)
        summary = compare_latest(records)
        assert summary.ok  # the slow record has no comparable history

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            compare_latest([], tolerance=-0.1)
        with pytest.raises(ValueError):
            compare_latest([], window=0)

    def test_comparison_describe_mentions_verdict(self):
        comparison = Comparison(
            bench="b", fingerprint="f", key="x_s", current=2.0, baseline=1.0,
            direction="lower", method="median-of-3", n_history=3,
            tolerance=0.25, regressed=True, ratio=2.0,
        )
        assert "REGRESSION" in comparison.describe()


class TestCli:
    def _seed_history(self, path, seconds_list):
        for seconds in seconds_list:
            append_history("bench_a", _payload(seconds), path=path)

    def test_exit_0_on_clean_history(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self._seed_history(path, [1.0, 1.02, 0.98, 1.01])
        assert main(["bench", "compare", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_exit_1_on_injected_regression(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self._seed_history(path, [1.0, 1.02, 0.98, 3.0])
        assert main(["bench", "compare", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_2_when_no_history(self, tmp_path):
        assert main(["bench", "compare", "--history", str(tmp_path / "x.jsonl")]) == 2

    def test_exit_2_when_nothing_comparable(self, tmp_path):
        path = tmp_path / "h.jsonl"
        self._seed_history(path, [1.0])  # single run: no baseline yet
        assert main(["bench", "compare", "--history", str(path)]) == 2

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self._seed_history(path, [1.0, 1.0, 1.0, 5.0])
        assert main(["bench", "compare", "--history", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["n_regressions"] >= 1
        assert payload["comparisons"][0]["bench"] == "bench_a"

    def test_tolerance_flag(self, tmp_path):
        path = tmp_path / "h.jsonl"
        self._seed_history(path, [1.0, 1.0, 1.0, 1.2])
        assert main(["bench", "compare", "--history", str(path)]) == 0
        assert (
            main(["bench", "compare", "--history", str(path), "--tolerance", "0.05"])
            == 1
        )
