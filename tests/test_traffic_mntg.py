"""Tests for the MNTG-like traffic generator."""

import numpy as np
import pytest

from repro.network.generators import grid_network
from repro.traffic.mntg import MNTGenerator


@pytest.fixture(scope="module")
def network():
    return grid_network(5, 5, two_way=True)


class TestGenerateTrajectories:
    def test_count_and_ids(self, network):
        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(20, 50)
        assert len(trips) == 20
        assert [t.vehicle_id for t in trips] == list(range(20))

    def test_reproducible(self, network):
        a = MNTGenerator(network, seed=5).generate_trajectories(10, 50)
        b = MNTGenerator(network, seed=5).generate_trajectories(10, 50)
        assert [t.segments for t in a] == [t.segments for t in b]

    def test_routes_nonempty_and_contiguous(self, network):
        trips = MNTGenerator(network, seed=1).generate_trajectories(15, 50)
        for trip in trips:
            assert trip.segments
            node = network.segment(trip.segments[0]).source
            for sid in trip.segments:
                seg = network.segment(sid)
                assert seg.source == node
                node = seg.target

    def test_departures_within_horizon(self, network):
        trips = MNTGenerator(network, seed=2).generate_trajectories(
            30, 100, depart_horizon=0.5
        )
        assert all(0 <= t.depart_time < 50 for t in trips)

    def test_invalid_args(self, network):
        gen = MNTGenerator(network, seed=0)
        with pytest.raises(ValueError):
            gen.generate_trajectories(0, 10)
        with pytest.raises(ValueError):
            gen.generate_trajectories(5, 0)
        with pytest.raises(ValueError):
            gen.generate_trajectories(5, 10, depart_horizon=0.0)

    def test_centre_bias_concentrates_trips(self, network):
        """Higher bias puts more trip endpoints near the centroid."""
        xs = np.array([i.location.x for i in network.intersections])
        ys = np.array([i.location.y for i in network.intersections])
        cx, cy = xs.mean(), ys.mean()

        def mean_endpoint_distance(bias):
            gen = MNTGenerator(network, centre_bias=bias, seed=3)
            trips = gen.generate_trajectories(100, 50)
            dists = []
            for t in trips:
                seg = network.segment(t.segments[0])
                loc = network.intersection(seg.source).location
                dists.append(np.hypot(loc.x - cx, loc.y - cy))
            return np.mean(dists)

        assert mean_endpoint_distance(5.0) < mean_endpoint_distance(0.0)


class TestPositions:
    def test_vehicle_absent_before_departure(self, network):
        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(10, 100, depart_horizon=0.5)
        late = [t for t in trips if t.depart_time > 0]
        if late:
            positions = dict(gen.positions_at(late, 0))
            assert late[0].vehicle_id not in positions

    def test_positions_on_network(self, network):
        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(20, 100)
        positions = gen.positions_at(trips, 1, dt=5.0)
        assert positions  # someone is driving
        for __, point in positions:
            assert 0 <= point.x <= 400 and 0 <= point.y <= 400

    def test_occupancy_matches_positions_count(self, network):
        gen = MNTGenerator(network, seed=4)
        trips = gen.generate_trajectories(25, 100)
        t = 2
        occupancy = gen.occupancy_at(trips, t, dt=5.0)
        positions = gen.positions_at(trips, t, dt=5.0)
        assert sum(occupancy.values()) == len(positions)

    def test_all_arrive_eventually(self, network):
        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(10, 10, depart_horizon=0.2)
        assert gen.occupancy_at(trips, 100000) == {}

    def test_bad_dt_raises(self, network):
        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(5, 10)
        with pytest.raises(ValueError):
            gen.positions_at(trips, 0, dt=0.0)
