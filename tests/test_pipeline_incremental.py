"""Tests for incremental/distributed repartitioning."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.pipeline.incremental import IncrementalRepartitioner
from repro.traffic.profiles import hotspot_profile


@pytest.fixture(scope="module")
def setup():
    network = grid_network(6, 6, two_way=True)
    graph = build_road_graph(network)
    base = hotspot_profile(network, n_hotspots=2, noise=0.0, seed=0)
    return network, graph, base


class TestBootstrap:
    def test_produces_k_partitions(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        labels = inc.bootstrap(base)
        assert int(labels.max()) + 1 == 4
        assert labels.shape == (graph.n_nodes,)

    def test_labels_property_copies(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, seed=0)
        inc.bootstrap(base)
        snapshot = inc.labels
        snapshot[0] = 99
        assert inc.labels[0] != 99

    def test_update_before_bootstrap_rejected(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, seed=0)
        with pytest.raises(PartitioningError, match="bootstrap"):
            inc.update(base)


class TestUpdate:
    def test_unchanged_densities_refresh_nothing(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        before = inc.bootstrap(base)
        report = inc.update(base)
        assert report.refreshed == []
        np.testing.assert_array_equal(report.labels, before)

    def test_uniform_scaling_below_threshold_keeps_regions(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.25, seed=0)
        inc.bootstrap(base)
        report = inc.update(base * 1.1)  # +10% everywhere, under 25%
        assert report.refreshed == []

    def test_localised_change_refreshes_some_regions(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.25, seed=0)
        labels = inc.bootstrap(base)
        # quadruple congestion inside one region only
        changed = base.copy()
        target = 0
        changed[labels == target] *= 4.0
        report = inc.update(changed)
        assert target in report.refreshed
        assert len(report.kept) >= 1

    def test_kept_regions_preserve_membership(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.25, seed=0)
        labels = inc.bootstrap(base)
        changed = base.copy()
        changed[labels == 0] *= 4.0
        report = inc.update(changed)
        # every kept region maps to exactly one new region with the
        # same member set
        for old in report.kept:
            members = np.flatnonzero(labels == old)
            new_ids = set(report.labels[members].tolist())
            assert len(new_ids) == 1
            new_id = new_ids.pop()
            np.testing.assert_array_equal(
                np.flatnonzero(report.labels == new_id), members
            )

    def test_labels_stay_dense(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.1, seed=0)
        labels = inc.bootstrap(base)
        changed = base.copy()
        changed[labels == 1] *= 3.0
        report = inc.update(changed)
        k_new = int(report.labels.max()) + 1
        assert set(report.labels.tolist()) == set(range(k_new))

    def test_density_shape_checked(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=3, seed=0)
        inc.bootstrap(base)
        with pytest.raises(PartitioningError):
            inc.update(base[:-1])

    def test_invalid_params(self, setup):
        __, graph, __base = setup
        with pytest.raises(PartitioningError):
            IncrementalRepartitioner(graph, k=0)
        with pytest.raises(PartitioningError):
            IncrementalRepartitioner(graph, k=3, staleness_threshold=-1.0)

    def test_report_carries_wall_time(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        inc.bootstrap(base)
        report = inc.update(base * 10.0)  # everything stale
        assert report.duration_s > 0
        quiet = inc.update(base * 10.0)  # nothing stale
        assert quiet.duration_s > 0
        assert quiet.refreshed == []

    def test_no_refresh_means_no_relabelling(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        inc.bootstrap(base)
        report = inc.update(base)
        assert report.n_relabelled == 0

    def test_split_region_counts_relabelled_segments(self, setup):
        __, graph, base = setup
        # k=5/seed=0 bootstraps an uneven partitioning whose largest
        # region splits locally when its congestion quadruples
        inc = IncrementalRepartitioner(graph, k=5, staleness_threshold=0.25, seed=0)
        labels = inc.bootstrap(base)
        sizes = np.bincount(labels)
        big = int(sizes.argmax())
        changed = base.copy()
        changed[labels == big] *= 4.0
        report = inc.update(changed)
        assert big in report.refreshed
        assert report.n_relabelled >= int(sizes[big])
        assert report.n_relabelled <= int(sizes[report.refreshed].sum())

    def test_unsplit_refresh_counts_zero_relabelled(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.25, seed=0)
        labels = inc.bootstrap(base)
        changed = base.copy()
        changed[labels == 0] *= 4.0
        report = inc.update(changed)
        # region 0 is ~1/4 of the grid: its local refresh yields a
        # single part, so membership does not churn
        if report.refreshed == [0] and report.n_regions == 4:
            assert report.n_relabelled == 0

    def test_n_regions_property(self, setup):
        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        inc.bootstrap(base)
        report = inc.update(base)
        assert report.n_regions == int(report.labels.max()) + 1

    def test_graph_and_k_accessors(self, setup):
        __, graph, __base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        assert inc.graph is graph
        assert inc.k == 4

    def test_update_metrics_recorded(self, setup):
        from repro.obs.metrics import MetricsRegistry, use_registry

        __, graph, base = setup
        inc = IncrementalRepartitioner(graph, k=4, seed=0)
        inc.bootstrap(base)
        registry = MetricsRegistry()
        with use_registry(registry):
            inc.update(base * 10.0)
        snapshot = registry.to_dict()
        assert snapshot["histograms"]["incremental.update_latency_s"]["count"] == 1
        assert "incremental.segments_relabelled" in snapshot["counters"]

    def test_repeated_updates_remain_consistent(self, setup):
        __, graph, base = setup
        rng = np.random.default_rng(0)
        inc = IncrementalRepartitioner(graph, k=4, staleness_threshold=0.2, seed=0)
        inc.bootstrap(base)
        densities = base
        for __ in range(3):
            densities = densities * rng.uniform(0.7, 1.6, size=densities.shape)
            report = inc.update(densities)
            labels = report.labels
            assert labels.shape == (graph.n_nodes,)
            assert labels.min() == 0
