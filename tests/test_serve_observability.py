"""In-process tests of the server's observability plane.

Boots :class:`PartitionServer` on a tiny spatial-shard labelling with
the full telemetry stack attached — SLO tracker, request tracer, live
recorder, access-log sampling — and exercises the new surfaces over
real HTTP: ``/slo``, ``/trace``, ``/dashboard``, the 503 +
``Retry-After`` degraded mode, and the per-status response counters.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.obs.live import LiveRecorder
from repro.obs.slo import SLOTracker, default_objectives
from repro.obs.trace import Tracer, make_traceparent
from repro.serve import PartitionServer, SegmentIndex, SnapshotStore
from repro.shard.spatial import segment_midpoints, spatial_shards


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def _wait_counter(registry, name: str, minimum: float = 1.0) -> float:
    """Poll a counter until it reaches ``minimum`` (accounting runs on
    the server loop after the response bytes are already written, so a
    fast client can observe the response first)."""
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        value = registry.counter(name)
        if value >= minimum:
            return value
        time.sleep(0.01)
    return registry.counter(name)


def _make_store():
    network = grid_network(6, 6, two_way=True)
    points = segment_midpoints(network)
    labels = spatial_shards(points, 4)
    graph = build_road_graph(network)
    index = SegmentIndex(labels, points=points, adjacency=graph.adjacency)
    store = SnapshotStore()
    store.publish(index, meta={"labeller": "spatial_shards"})
    return store, network.n_segments


@pytest.fixture()
def observed_server():
    """A server with SLO + tracer + live recorder attached."""
    store, n_segments = _make_store()
    slo = SLOTracker(default_objectives(0.010))
    tracer = Tracer()
    live = LiveRecorder()
    live.add_source("constant", lambda: 42.0)
    server = PartitionServer(
        store, slo=slo, tracer=tracer, live=live, access_log_sample=1.0
    )
    handle = server.start_background()
    yield handle, server, n_segments
    handle.stop()
    store.close()


class TestSLOEndpoint:
    def test_disabled_without_tracker(self):
        store, __ = _make_store()
        handle = PartitionServer(store).start_background()
        try:
            doc = json.loads(_get(handle.url + "/slo"))
            assert doc == {"enabled": False}
        finally:
            handle.stop()
            store.close()

    def test_within_budget_after_fast_traffic(self, observed_server):
        handle, __, __n = observed_server
        for sid in range(5):
            _get(handle.url + f"/lookup?segment={sid}")
        doc = json.loads(_get(handle.url + "/slo"))
        assert doc["enabled"] is True
        assert doc["burning"] is False
        names = {e["objective"]["name"] for e in doc["objectives"]}
        assert names == {"availability", "latency"}
        for entry in doc["objectives"]:
            assert entry["budget_remaining"] == 1.0

    def test_slo_gauges_on_metrics(self, observed_server):
        handle, __, __n = observed_server
        _get(handle.url + "/lookup?segment=0")
        from repro.obs.export import parse_prometheus

        samples, __t = parse_prometheus(_get(handle.url + "/metrics").decode())
        names = {s.name for s in samples}
        assert "repro_slo_burn_rate" in names
        assert "repro_slo_error_budget_remaining" in names
        assert "repro_slo_burning" in names


class TestInjectedSlowness:
    def test_slow_path_burns_the_latency_budget(self):
        store, __ = _make_store()
        slo = SLOTracker(default_objectives(0.005))
        server = PartitionServer(store, slo=slo, inject_slow_s=0.02)
        handle = server.start_background()
        try:
            for sid in range(8):
                _get(handle.url + f"/lookup?segment={sid}")
            doc = json.loads(_get(handle.url + "/slo"))
            latency = next(
                e for e in doc["objectives"]
                if e["objective"]["name"] == "latency"
            )
            assert latency["burning"] is True
            assert latency["budget_remaining"] == 0.0
            availability = next(
                e for e in doc["objectives"]
                if e["objective"]["name"] == "availability"
            )
            assert availability["burning"] is False  # 200s are still good
            assert doc["burning"] is True
        finally:
            handle.stop()
            store.close()


class TestTraceEndpoint:
    def test_traceparent_propagates_into_span_attrs(self, observed_server):
        handle, __, __n = observed_server
        trace_id = "c0ffee" + "0" * 25 + "1"
        header = make_traceparent(trace_id=trace_id)
        req = urllib.request.Request(
            handle.url + "/lookup?segment=1",
            headers={"traceparent": header},
        )
        urllib.request.urlopen(req, timeout=10).read()
        doc = json.loads(_get(handle.url + "/trace"))
        assert doc["enabled"] is True
        spans = doc["spans"]
        assert spans, "expected at least one request-group span"
        mine = [s for s in spans if s["attrs"].get("trace_id") == trace_id]
        assert mine, f"trace id not found in {[s['attrs'] for s in spans[-5:]]}"
        attrs = mine[-1]["attrs"]
        assert attrs["endpoint"] == "/lookup"
        assert attrs["status"] == 200
        assert attrs["epoch"] == 1
        assert attrs["n_requests"] >= 1

    def test_malformed_traceparent_gets_a_fresh_id(self, observed_server):
        handle, __, __n = observed_server
        req = urllib.request.Request(
            handle.url + "/lookup?segment=1",
            headers={"traceparent": "garbage-header"},
        )
        urllib.request.urlopen(req, timeout=10).read()
        spans = json.loads(_get(handle.url + "/trace"))["spans"]
        attrs = spans[-1]["attrs"]
        assert len(attrs["trace_id"]) == 32
        assert attrs["trace_id"] != "garbage-header"

    def test_trace_disabled_without_tracer(self):
        store, __ = _make_store()
        handle = PartitionServer(store).start_background()
        try:
            doc = json.loads(_get(handle.url + "/trace"))
            assert doc["enabled"] is False
        finally:
            handle.stop()
            store.close()


class TestDashboard:
    def test_dashboard_renders_sparklines_and_slo_table(self, observed_server):
        handle, server, __n = observed_server
        for sid in range(3):
            _get(handle.url + f"/lookup?segment={sid}")
        server.live.sample_once()  # tick the pull sources
        html = _get(handle.url + "/dashboard").decode()
        assert html.startswith("<!DOCTYPE html>") or html.startswith("<html")
        assert "polyline" in html  # the sparkline for "constant"
        assert "constant" in html
        assert "availability" in html  # the SLO table
        assert "epoch" in html.lower()

    def test_dashboard_without_telemetry_still_serves(self):
        store, __ = _make_store()
        handle = PartitionServer(store).start_background()
        try:
            html = _get(handle.url + "/dashboard").decode()
            assert "epoch" in html.lower()
        finally:
            handle.stop()
            store.close()


class TestDegradedMode:
    def test_empty_store_returns_503_with_retry_after(self):
        store = SnapshotStore()  # nothing published
        server = PartitionServer(store, require_epoch=False)
        handle = server.start_background()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(handle.url + "/lookup?segment=0")
            err = excinfo.value
            assert err.code == 503
            assert err.headers["Retry-After"] == "1"
            body = json.loads(err.read())
            assert "epoch" in body["error"]
            # the per-status counter saw it
            assert _wait_counter(server.registry, "serve.responses[status=503]") >= 1
        finally:
            handle.stop()
            store.close()

    def test_recovers_after_first_publish(self):
        store = SnapshotStore()
        server = PartitionServer(store, require_epoch=False)
        handle = server.start_background()
        try:
            with pytest.raises(urllib.error.HTTPError):
                _get(handle.url + "/lookup?segment=0")
            fresh, __ = _make_store()
            store.publish(fresh.current().index, meta={})
            payload = json.loads(_get(handle.url + "/lookup?segment=0"))
            assert payload["region"] >= 0
        finally:
            handle.stop()
            store.close()

    def test_require_epoch_default_still_fails_fast(self):
        store = SnapshotStore()
        server = PartitionServer(store)  # require_epoch=True
        with pytest.raises(Exception):
            server.start_background()
        store.close()


class TestStatusCounters:
    def test_per_status_counters_accumulate(self, observed_server):
        handle, server, __n = observed_server
        _get(handle.url + "/lookup?segment=0")
        with pytest.raises(urllib.error.HTTPError):
            _get(handle.url + "/lookup?segment=not-a-number")
        assert _wait_counter(server.registry, "serve.responses[status=200]") >= 1
        assert _wait_counter(server.registry, "serve.responses[status=400]") >= 1
