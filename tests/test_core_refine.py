"""Tests for partition-connectivity matrix, recursive bipartitioning
and greedy pruning (Algorithm 3, lines 12-24)."""

import numpy as np
import pytest

from repro.core.refine import (
    greedy_prune,
    partition_connectivity_matrix,
    recursive_bipartition,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph


class TestPartitionConnectivityMatrix:
    def test_rms_of_cross_weights(self):
        g = Graph(4, edges=[(0, 1, 1.0), (1, 2, 0.6), (2, 3, 1.0), (0, 2, 0.8)])
        labels = np.array([0, 0, 1, 1])
        meta = partition_connectivity_matrix(g.adjacency, labels)
        # cross links: (1,2) w=0.6 and (0,2) w=0.8 -> RMS
        expected = np.sqrt((0.6**2 + 0.8**2) / 2)
        assert meta[0, 1] == pytest.approx(expected)
        assert meta[1, 0] == pytest.approx(expected)

    def test_zero_diagonal(self):
        g = Graph(4, edges=[(0, 1), (2, 3), (1, 2)])
        meta = partition_connectivity_matrix(g.adjacency, [0, 0, 1, 1])
        assert meta[0, 0] == 0.0

    def test_non_adjacent_partitions_zero(self):
        g = Graph(6, edges=[(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)])
        meta = partition_connectivity_matrix(g.adjacency, [0, 0, 1, 1, 2, 2])
        assert meta[0, 2] == 0.0
        assert meta[0, 1] > 0 and meta[1, 2] > 0

    def test_shape_mismatch_raises(self):
        g = Graph(3, edges=[(0, 1)])
        with pytest.raises(PartitioningError):
            partition_connectivity_matrix(g.adjacency, [0, 1])


class TestRecursiveBipartition:
    def test_two_groups(self):
        # meta chain with a weak middle link
        meta = np.array(
            [
                [0.0, 0.9, 0.0, 0.0],
                [0.9, 0.0, 0.1, 0.0],
                [0.0, 0.1, 0.0, 0.9],
                [0.0, 0.0, 0.9, 0.0],
            ]
        )
        groups = recursive_bipartition(meta, 2, seed=0)
        assert groups[0] == groups[1]
        assert groups[2] == groups[3]
        assert groups[0] != groups[2]

    def test_k_one_everything_together(self):
        meta = np.eye(3) * 0
        groups = recursive_bipartition(meta, 1, seed=0)
        assert groups.max() == 0

    def test_k_equals_k_prime(self):
        meta = np.array([[0.0, 0.5], [0.5, 0.0]])
        groups = recursive_bipartition(meta, 2, seed=0)
        assert sorted(groups.tolist()) == [0, 1]

    def test_exactly_k_groups(self):
        rng = np.random.default_rng(0)
        n = 12
        meta = rng.random((n, n))
        meta = (meta + meta.T) / 2
        np.fill_diagonal(meta, 0.0)
        for k in (2, 3, 5, 7):
            groups = recursive_bipartition(meta, k, seed=0)
            assert len(set(groups.tolist())) == k

    def test_invalid_k(self):
        meta = np.zeros((3, 3))
        with pytest.raises(PartitioningError):
            recursive_bipartition(meta, 0)
        with pytest.raises(PartitioningError):
            recursive_bipartition(meta, 4)

    def test_custom_bipartition_fn(self):
        meta = np.ones((4, 4)) - np.eye(4)
        calls = []

        def split_first(sub, rng):
            calls.append(sub.shape[0])
            labels = np.zeros(sub.shape[0], dtype=int)
            labels[0] = 1
            return labels

        groups = recursive_bipartition(meta, 3, seed=0, bipartition_fn=split_first)
        assert len(set(groups.tolist())) == 3
        assert calls  # custom function was used


class TestGreedyPrune:
    def test_reduces_to_k(self, two_cliques):
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        pruned = greedy_prune(two_cliques.adjacency, labels, 2)
        assert len(set(pruned.tolist())) == 2

    def test_merges_within_cliques_first(self, two_cliques):
        """Greedy pruning should reassemble the cliques, not merge
        across the bridge."""
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        pruned = greedy_prune(two_cliques.adjacency, labels, 2)
        assert len(set(pruned[:4].tolist())) == 1
        assert len(set(pruned[4:].tolist())) == 1

    def test_noop_when_already_k(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        pruned = greedy_prune(two_cliques.adjacency, labels, 2)
        np.testing.assert_array_equal(pruned, labels)

    def test_invalid_k(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        with pytest.raises(PartitioningError):
            greedy_prune(two_cliques.adjacency, labels, 3)
