"""Tests for the dual transform (Definition 2)."""

import numpy as np
import pytest

from repro.network.dual import build_road_graph, segment_adjacency
from repro.network.generators import grid_network
from repro.network.geometry import Point
from repro.network.model import Intersection, RoadNetwork, RoadSegment


def _star_network():
    """Four segments radiating out of a central intersection 0."""
    intersections = [Intersection(i, Point(i * 10.0, 0.0)) for i in range(5)]
    segments = [RoadSegment(i, 0, i + 1, length=10.0) for i in range(4)]
    return RoadNetwork(intersections, segments)


def _chain_network(n=4):
    """A linear chain of n segments."""
    intersections = [Intersection(i, Point(i * 10.0, 0.0)) for i in range(n + 1)]
    segments = [RoadSegment(i, i, i + 1, length=10.0) for i in range(n)]
    return RoadNetwork(intersections, segments)


class TestSegmentAdjacency:
    def test_star_forms_clique(self):
        """Star topology in the network forms a clique in the dual."""
        pairs = segment_adjacency(_star_network())
        assert len(pairs) == 6  # C(4, 2)

    def test_chain_stays_linear(self):
        pairs = segment_adjacency(_chain_network(4))
        assert pairs == [(0, 1), (1, 2), (2, 3)]

    def test_two_way_street_directions_adjacent(self):
        intersections = [Intersection(0, Point(0, 0)), Intersection(1, Point(10, 0))]
        segments = [
            RoadSegment(0, 0, 1, length=10.0),
            RoadSegment(1, 1, 0, length=10.0),
        ]
        pairs = segment_adjacency(RoadNetwork(intersections, segments))
        assert pairs == [(0, 1)]

    def test_pairs_unique_even_with_shared_both_endpoints(self):
        # two-way pair shares both intersections but appears once
        intersections = [Intersection(0, Point(0, 0)), Intersection(1, Point(10, 0))]
        segments = [
            RoadSegment(0, 0, 1, length=10.0),
            RoadSegment(1, 1, 0, length=10.0),
        ]
        pairs = segment_adjacency(RoadNetwork(intersections, segments))
        assert len(pairs) == len(set(pairs))


class TestBuildRoadGraph:
    def test_node_count_equals_segments(self):
        net = grid_network(3, 3, two_way=True)
        graph = build_road_graph(net)
        assert graph.n_nodes == net.n_segments

    def test_features_are_densities(self):
        net = _chain_network(3)
        net.set_densities([0.1, 0.2, 0.3])
        graph = build_road_graph(net)
        np.testing.assert_allclose(graph.features, [0.1, 0.2, 0.3])

    def test_dual_of_connected_network_is_connected(self):
        from repro.graph.components import is_connected

        net = grid_network(4, 4, two_way=True)
        graph = build_road_graph(net)
        assert is_connected(graph.adjacency)

    def test_edges_are_binary(self):
        net = grid_network(3, 3, two_way=True)
        graph = build_road_graph(net)
        weights = {w for __, __, w in graph.edges()}
        assert weights == {1.0}
