"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_finite_array,
    check_in_range,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_message_contains_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int(-5, "my_param")


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5

    def test_boundaries_inclusive(self):
        assert check_in_range(0, "x", 0, 1) == 0.0
        assert check_in_range(1, "x", 0, 1) == 1.0

    def test_outside_raises(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0, 1)


class TestCheckProbability:
    def test_valid(self):
        assert check_probability(0.3, "p") == 0.3

    def test_above_one_raises(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")


class TestCheckFiniteArray:
    def test_valid(self):
        arr = check_finite_array([1, 2, 3], "x")
        assert arr.dtype == float

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite_array([1.0, float("nan")], "x")

    def test_inf_raises(self):
        with pytest.raises(ValueError):
            check_finite_array([float("inf")], "x")

    def test_empty_ok(self):
        assert check_finite_array([], "x").size == 0
