"""Tests for map-matching and density computation."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.network.geometry import Point
from repro.traffic.density import DensityMapper, densities_from_counts
from repro.traffic.mntg import MNTGenerator


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0, two_way=True)


@pytest.fixture(scope="module")
def mapper(network):
    return DensityMapper(network)


class TestMatch:
    def test_point_on_segment_matches_it(self, network, mapper):
        a, b = network.segment_endpoints(0)
        mid = a.midpoint(b)
        matched = mapper.match(mid)
        ma, mb = network.segment_endpoints(matched)
        # matched segment must be geometrically coincident with seg 0
        assert {(ma.x, ma.y), (mb.x, mb.y)} == {(a.x, a.y), (b.x, b.y)}

    def test_offset_point_matches_nearest(self, mapper, network):
        # a point 10 m off the middle of the bottom-left horizontal street
        matched = mapper.match(Point(50.0, 10.0))
        a, b = network.segment_endpoints(matched)
        assert a.y == 0.0 and b.y == 0.0

    def test_far_point_still_matches(self, mapper):
        sid = mapper.match(Point(-500.0, -500.0))
        assert sid >= 0

    def test_match_many(self, mapper):
        points = [Point(50, 0), Point(150, 0), Point(0, 50)]
        ids = mapper.match_many(points)
        assert ids.shape == (3,)

    def test_empty_network_rejected(self):
        from repro.network.model import Intersection, RoadNetwork

        net = RoadNetwork([Intersection(0, Point(0, 0))], [])
        with pytest.raises(DataError):
            DensityMapper(net)


class TestDensities:
    def test_counts_to_densities(self, network):
        counts = np.zeros(network.n_segments, dtype=int)
        counts[0] = 5
        dens = densities_from_counts(network, counts)
        assert dens[0] == pytest.approx(5 / network.segment(0).length)
        assert dens[1:].sum() == 0.0

    def test_wrong_shape_rejected(self, network):
        with pytest.raises(DataError):
            densities_from_counts(network, [1, 2])

    def test_negative_counts_rejected(self, network):
        counts = np.zeros(network.n_segments, dtype=int)
        counts[0] = -1
        with pytest.raises(DataError):
            densities_from_counts(network, counts)

    def test_mapper_densities_sum_matches_vehicles(self, network, mapper):
        points = [Point(50, 0), Point(50, 1), Point(250, 100)]
        dens = mapper.densities(points)
        lengths = np.array([s.length for s in network.segments])
        assert (dens * lengths).sum() == pytest.approx(3.0)


class TestAgainstGenerator:
    def test_matching_recovers_true_segments(self, network, mapper):
        """Every matched segment must be geometrically nearest: the
        position lies exactly on its true segment, so the match's
        point-to-segment distance must be ~0; and most matches agree
        with the ground-truth segment (points at shared intersections
        are legitimately ambiguous between incident segments)."""
        from repro.traffic.density import _point_segment_distance

        gen = MNTGenerator(network, seed=0)
        trips = gen.generate_trajectories(60, 60)
        positions = []
        truths = []
        for t in range(1, 10):
            for vid, point in gen.positions_at(trips, t, dt=5.0):
                positions.append(point)
                truths.append(gen._segment_on_route(trips[vid], t, 5.0))
        assert len(positions) >= 20

        def twin_ids(sid):
            seg = network.segment(sid)
            return {
                s.id
                for s in network.segments
                if {s.source, s.target} == {seg.source, seg.target}
            }

        agree = 0
        for point, true_sid in zip(positions, truths):
            matched = mapper.match(point)
            ax, ay, bx, by = mapper._coords[matched]
            assert (
                _point_segment_distance(point.x, point.y, ax, ay, bx, by) < 1e-6
            )
            if matched in twin_ids(true_sid):
                agree += 1
        assert agree / len(positions) > 0.7
