"""Tests for exact 1-D k-means (dynamic programming)."""

import itertools

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans_1d
from repro.clustering.optimal1d import kmeans_1d_optimal
from repro.exceptions import ClusteringError


def _brute_force_inertia(values, kappa):
    """Optimal inertia by trying every contiguous segmentation."""
    x = np.sort(np.asarray(values, dtype=float))
    n = x.size

    def sse(seg):
        return ((seg - seg.mean()) ** 2).sum() if seg.size else 0.0

    best = np.inf
    for cuts in itertools.combinations(range(1, n), kappa - 1):
        bounds = (0,) + cuts + (n,)
        total = sum(sse(x[a:b]) for a, b in zip(bounds, bounds[1:]))
        best = min(best, total)
    return best


class TestKmeans1dOptimal:
    def test_matches_brute_force(self, rng):
        for trial in range(5):
            values = rng.random(12)
            for kappa in (2, 3, 4):
                result = kmeans_1d_optimal(values, kappa)
                expected = _brute_force_inertia(values, kappa)
                assert result.inertia == pytest.approx(expected, abs=1e-10)

    def test_never_worse_than_lloyd(self, rng):
        for trial in range(5):
            values = rng.random(60)
            for kappa in (2, 5, 9):
                optimal = kmeans_1d_optimal(values, kappa).inertia
                lloyd = kmeans_1d(values, kappa).inertia
                assert optimal <= lloyd + 1e-9

    def test_obvious_clusters(self):
        values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
        result = kmeans_1d_optimal(values, 2)
        assert len(set(result.labels[:3].tolist())) == 1
        assert result.labels[0] != result.labels[3]

    def test_labels_contiguous_in_sorted_order(self, rng):
        values = rng.random(40)
        result = kmeans_1d_optimal(values, 5)
        order = np.argsort(values)
        sorted_labels = result.labels[order]
        # labels along sorted values never decrease
        assert (np.diff(sorted_labels) >= 0).all()

    def test_centers_are_cluster_means(self, rng):
        values = rng.random(30)
        result = kmeans_1d_optimal(values, 4)
        for c in range(4):
            members = values[result.labels == c]
            assert result.centers[c] == pytest.approx(members.mean())

    def test_kappa_equals_n(self):
        result = kmeans_1d_optimal([3.0, 1.0, 2.0], 3)
        assert result.inertia == pytest.approx(0.0)

    def test_kappa_one(self):
        values = np.array([1.0, 2.0, 6.0])
        result = kmeans_1d_optimal(values, 1)
        assert result.inertia == pytest.approx(((values - 3.0) ** 2).sum())

    def test_duplicates_handled(self):
        result = kmeans_1d_optimal([1.0] * 5 + [2.0] * 5, 2)
        assert result.inertia == pytest.approx(0.0)

    def test_deterministic(self, rng):
        values = rng.random(50)
        a = kmeans_1d_optimal(values, 6)
        b = kmeans_1d_optimal(values, 6)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            kmeans_1d_optimal([1.0, 2.0], 0)
        with pytest.raises(ClusteringError):
            kmeans_1d_optimal([1.0], 2)
        with pytest.raises(ClusteringError):
            kmeans_1d_optimal([1.0, float("nan")], 1)

    def test_moderate_size_fast(self, rng):
        """The divide-and-conquer DP handles thousands of values."""
        values = rng.random(3000)
        result = kmeans_1d_optimal(values, 8)
        assert result.inertia < kmeans_1d(values, 8).inertia + 1e-9
