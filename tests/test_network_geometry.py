"""Tests for repro.network.geometry."""

import math

import pytest

from repro.network.geometry import (
    Point,
    bounding_box,
    euclidean,
    interpolate,
    polyline_length,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.distance_to(b) == b.distance_to(a)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0

    def test_euclidean_helper(self):
        assert euclidean(Point(0, 0), Point(0, 7)) == 7.0


class TestPolylineLength:
    def test_two_points(self):
        assert polyline_length([Point(0, 0), Point(3, 4)]) == 5.0

    def test_multi_segment(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1)]
        assert polyline_length(pts) == 2.0

    def test_degenerate(self):
        assert polyline_length([Point(0, 0)]) == 0.0
        assert polyline_length([]) == 0.0


class TestInterpolate:
    def test_endpoints(self):
        a, b = Point(0, 0), Point(10, 0)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midway(self):
        assert interpolate(Point(0, 0), Point(10, 20), 0.5) == Point(5, 10)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            interpolate(Point(0, 0), Point(1, 1), 1.5)


class TestBoundingBox:
    def test_box(self):
        pts = [Point(1, 5), Point(-2, 3), Point(4, 0)]
        assert bounding_box(pts) == (-2, 0, 4, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
