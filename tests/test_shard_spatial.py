"""Spatial sharding: balance, compactness, determinism, fallbacks."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.network.generators import urban_network
from repro.shard.spatial import (
    graph_shards,
    segment_midpoints,
    shard_order,
    spatial_shards,
    structural_shards,
)


def _grid_graph(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1))
            if r + 1 < rows:
                edges.append((i, i + cols))
    return Graph(rows * cols, edges)


class TestSpatialShards:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7, 8])
    def test_balanced_partition(self, n_shards):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(500, 2))
        labels = spatial_shards(pts, n_shards)
        assert labels.shape == (500,)
        counts = np.bincount(labels, minlength=n_shards)
        assert counts.min() >= 1
        assert counts.max() - counts.min() <= 1  # balanced to within one

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, size=(200, 2))
        assert np.array_equal(spatial_shards(pts, 5), spatial_shards(pts, 5))

    def test_cells_are_spatially_compact(self):
        # a 2-way split of a square must be a half-plane cut: every
        # shard-0 point lies on one side of every shard-1 point along
        # the split axis
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(400, 2))
        labels = spatial_shards(pts, 2)
        spans = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spans))
        assert pts[labels == 0, axis].max() <= pts[labels == 1, axis].min()

    def test_one_dimensional_points(self):
        labels = spatial_shards(np.arange(10.0), 2)
        assert np.array_equal(labels, [0] * 5 + [1] * 5)

    def test_invalid_shard_counts(self):
        pts = np.zeros((5, 2))
        with pytest.raises(GraphError):
            spatial_shards(pts, 0)
        with pytest.raises(GraphError):
            spatial_shards(pts, 6)


class TestStructuralShards:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_balanced_partition(self, n_shards):
        g = _grid_graph(10, 10)
        labels = structural_shards(g.adjacency, n_shards)
        counts = np.bincount(labels, minlength=n_shards)
        assert counts.min() >= 1
        assert counts.max() - counts.min() <= 1

    def test_locality_beats_random(self):
        # RCM chunking must cut far fewer edges than a random split
        g = _grid_graph(20, 20)
        labels = structural_shards(g.adjacency, 4)
        coo = g.adjacency.tocoo()
        upper = coo.row < coo.col
        cut = int((labels[coo.row[upper]] != labels[coo.col[upper]]).sum())
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 4, size=g.n_nodes)
        rand_cut = int((rand[coo.row[upper]] != rand[coo.col[upper]]).sum())
        assert cut < rand_cut


class TestGraphShards:
    def test_points_route_to_spatial(self):
        g = _grid_graph(6, 6)
        pts = np.column_stack(
            (np.repeat(np.arange(6.0), 6), np.tile(np.arange(6.0), 6))
        )
        labels = graph_shards(g, 4, points=pts)
        assert np.array_equal(labels, spatial_shards(pts, 4))

    def test_no_points_routes_to_structural(self):
        g = _grid_graph(6, 6)
        labels = graph_shards(g, 3)
        assert np.array_equal(labels, structural_shards(g.adjacency, 3))

    def test_point_count_mismatch_rejected(self):
        g = _grid_graph(4, 4)
        with pytest.raises(GraphError, match="must match"):
            graph_shards(g, 2, points=np.zeros((5, 2)))


class TestSegmentMidpoints:
    def test_shapes_and_values(self):
        net = urban_network(n_rows=5, n_cols=5, seed=2)
        pts = segment_midpoints(net)
        assert pts.shape == (net.n_segments, 2)
        mid = net.segment_midpoint(0)
        assert pts[0, 0] == pytest.approx(mid.x)
        assert pts[0, 1] == pytest.approx(mid.y)


class TestShardOrder:
    def test_groups_nodes_by_shard(self):
        labels = np.array([2, 0, 1, 0, 2, 1, 0])
        order, offsets = shard_order(labels, 3)
        assert offsets.tolist() == [0, 3, 5, 7]
        for s in range(3):
            members = order[offsets[s] : offsets[s + 1]]
            assert (labels[members] == s).all()
            # stable: members ascend within each shard
            assert np.array_equal(members, np.sort(members))
