"""Tests for partitioning-result (de)serialisation."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.pipeline.persistence import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.pipeline.results import PartitioningResult


@pytest.fixture
def result():
    return PartitioningResult(
        labels=np.array([0, 0, 1, 1, 2]),
        scheme="ASG",
        timings={"module2": 0.5, "module3": 0.25},
        n_supernodes=4,
    )


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        restored = result_from_dict(result_to_dict(result))
        np.testing.assert_array_equal(restored.labels, result.labels)
        assert restored.scheme == result.scheme
        assert restored.k == result.k
        assert restored.timings == result.timings
        assert restored.n_supernodes == result.n_supernodes

    def test_file_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.json")
        restored = load_result(path)
        np.testing.assert_array_equal(restored.labels, result.labels)
        assert restored.total_time == pytest.approx(result.total_time)

    def test_none_supernodes_preserved(self, tmp_path):
        result = PartitioningResult(labels=np.array([0, 1]), scheme="AG")
        restored = load_result(save_result(result, tmp_path / "r.json"))
        assert restored.n_supernodes is None

    def test_wrong_format_rejected(self):
        with pytest.raises(DataError):
            result_from_dict({"format": "something-else"})

    def test_restored_result_evaluates(self, result, tmp_path):
        from repro.graph.adjacency import Graph

        graph = Graph(
            5,
            edges=[(0, 1), (1, 2), (2, 3), (3, 4)],
            features=[0.0, 0.1, 0.5, 0.6, 1.0],
        )
        restored = load_result(save_result(result, tmp_path / "r.json"))
        metrics = restored.evaluate(graph)
        assert metrics["k"] == 3
