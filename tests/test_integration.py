"""Integration tests: the full paper pipeline across modules."""

import numpy as np
import pytest

from repro.baselines.ncut import ncut_value
from repro.core.alpha_cut import alpha_cut_value
from repro.datasets.small import small_network
from repro.graph.affinity import congestion_affinity
from repro.network.dual import build_road_graph
from repro.pipeline.framework import SpatialPartitioningFramework
from repro.pipeline.schemes import run_scheme
from repro.supergraph.builder import build_supergraph


@pytest.fixture(scope="module")
def d1():
    network, densities = small_network(seed=7)
    graph = build_road_graph(network).with_features(densities)
    return network, graph


class TestFullPipeline:
    def test_d1_all_schemes_produce_valid_partitions(self, d1):
        __, graph = d1
        for scheme in ("AG", "ASG", "NG", "NSG", "JG"):
            result = run_scheme(scheme, graph, 6, seed=0)
            validation = result.validate(graph)
            assert validation.is_valid, (scheme, validation.disconnected)
            assert result.k == 6

    def test_alpha_cut_beats_ncut_on_overall_quality(self, d1):
        """The paper's headline: AG outperforms NG on GDBI and ANS
        (median over repeated runs, moderate k)."""
        __, graph = d1
        ag_ans, ng_ans = [], []
        for seed in range(5):
            ag = run_scheme("AG", graph, 6, seed=seed).evaluate(graph)
            ng = run_scheme("NG", graph, 6, seed=seed).evaluate(graph)
            ag_ans.append(ag["ans"])
            ng_ans.append(ng["ans"])
        assert np.median(ag_ans) < np.median(ng_ans)

    def test_supergraph_reduces_order(self, d1):
        __, graph = d1
        sg = build_supergraph(graph, seed=0)
        assert sg.n_supernodes < graph.n_nodes / 2

    def test_asg_quality_close_to_ag(self, d1):
        """Partitioning the supergraph costs little quality relative to
        the direct road graph (paper Section 6.3)."""
        __, graph = d1
        ag = run_scheme("AG", graph, 6, seed=0).evaluate(graph)
        asg = run_scheme("ASG", graph, 6, seed=0).evaluate(graph)
        assert asg["ans"] < 3.0 * max(ag["ans"], 0.05)

    def test_objective_values_improve_over_random(self, d1):
        __, graph = d1
        affinity = congestion_affinity(graph)
        result = run_scheme("AG", graph, 6, seed=0)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 6, size=graph.n_nodes)
        __, random_labels = np.unique(random_labels, return_inverse=True)
        assert alpha_cut_value(affinity, result.labels) < alpha_cut_value(
            affinity, random_labels
        )

    def test_framework_matches_run_scheme(self, d1):
        network, graph = d1
        fw = SpatialPartitioningFramework(k=5, scheme="ASG", seed=3)
        via_framework = fw.partition(network, graph.features)
        via_scheme = run_scheme("ASG", graph, 5, seed=3)
        np.testing.assert_array_equal(via_framework.labels, via_scheme.labels)

    def test_labels_cover_all_segments(self, d1):
        network, graph = d1
        result = run_scheme("ASG", graph, 4, seed=0)
        assert result.labels.shape == (network.n_segments,)
        assert set(result.labels.tolist()) == set(range(result.k))


class TestTimeSeriesRepartitioning:
    """The paper's motivating use: repartition at regular intervals."""

    def test_repartition_over_time(self):
        from repro.datasets.small import small_network_series

        network, series = small_network_series(seed=0, n_steps=40)
        graph = build_road_graph(network)
        ks = []
        for t in (10, 20, 30):
            g_t = graph.with_features(series[t])
            result = run_scheme("ASG", g_t, 4, seed=0)
            assert result.validate(g_t).is_valid
            ks.append(result.k)
        assert ks == [4, 4, 4]
