"""Tests for the Ji & Geroliminis comparator."""

import numpy as np
import pytest

from repro.baselines.ji_geroliminis import JiGeroliminisPartitioner
from repro.exceptions import PartitioningError
from repro.graph.components import is_connected
from repro.metrics.distances import intra_metric


class TestJiGeroliminis:
    def test_produces_k_partitions(self, small_grid_graph):
        for k in (2, 4):
            labels = JiGeroliminisPartitioner(k, seed=0).partition(
                small_grid_graph
            )
            assert labels.max() + 1 == k
            assert labels.shape == (small_grid_graph.n_nodes,)

    def test_partitions_connected(self, small_grid_graph):
        labels = JiGeroliminisPartitioner(3, seed=0).partition(small_grid_graph)
        for i in range(labels.max() + 1):
            members = np.flatnonzero(labels == i)
            assert is_connected(small_grid_graph.adjacency, members)

    def test_boundary_adjustment_improves_homogeneity(self, small_grid_graph):
        """With adjustment sweeps the intra metric should not get worse
        compared to the unadjusted result."""
        raw = JiGeroliminisPartitioner(4, max_sweeps=0, seed=0).partition(
            small_grid_graph
        )
        adjusted = JiGeroliminisPartitioner(4, max_sweeps=10, seed=0).partition(
            small_grid_graph
        )
        feats = small_grid_graph.features
        assert intra_metric(feats, adjusted) <= intra_metric(feats, raw) + 1e-9

    def test_deterministic_given_seed(self, small_grid_graph):
        a = JiGeroliminisPartitioner(3, seed=4).partition(small_grid_graph)
        b = JiGeroliminisPartitioner(3, seed=4).partition(small_grid_graph)
        np.testing.assert_array_equal(a, b)

    def test_requires_graph_instance(self, small_grid_graph):
        with pytest.raises(PartitioningError, match="road Graph"):
            JiGeroliminisPartitioner(2).partition(small_grid_graph.adjacency)

    def test_invalid_params(self):
        with pytest.raises(PartitioningError):
            JiGeroliminisPartitioner(0)
        with pytest.raises(PartitioningError):
            JiGeroliminisPartitioner(2, overpartition_factor=0)
        with pytest.raises(PartitioningError):
            JiGeroliminisPartitioner(2, max_sweeps=-1)

    def test_k_too_large_rejected(self, two_cliques):
        with pytest.raises(PartitioningError):
            JiGeroliminisPartitioner(100).partition(two_cliques)

    def test_two_cliques(self, two_cliques):
        labels = JiGeroliminisPartitioner(2, seed=0).partition(two_cliques)
        assert labels.max() + 1 == 2
