"""Tests for the AG/ASG/NG/NSG/JG scheme runners."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.pipeline.schemes import SCHEMES, run_scheme
from repro.util.timer import ModuleTimer


class TestRunScheme:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_runs(self, scheme, small_grid_graph):
        result = run_scheme(scheme, small_grid_graph, 3, seed=0)
        assert result.scheme == scheme
        assert result.labels.shape == (small_grid_graph.n_nodes,)
        assert result.k >= 1

    @pytest.mark.parametrize("scheme", ("AG", "NG", "ASG", "NSG"))
    def test_exact_k_produced(self, scheme, small_grid_graph):
        result = run_scheme(scheme, small_grid_graph, 4, seed=0)
        assert result.k == 4

    def test_supergraph_schemes_record_supernodes(self, small_grid_graph):
        result = run_scheme("ASG", small_grid_graph, 3, seed=0)
        assert result.n_supernodes is not None
        assert result.n_supernodes <= small_grid_graph.n_nodes

    def test_direct_schemes_no_supernodes(self, small_grid_graph):
        result = run_scheme("AG", small_grid_graph, 3, seed=0)
        assert result.n_supernodes is None

    def test_timer_records_modules(self, small_grid_graph):
        timer = ModuleTimer()
        run_scheme("ASG", small_grid_graph, 3, seed=0, timer=timer)
        assert "module2" in timer.timings
        assert "module3" in timer.timings

    def test_direct_scheme_only_module3(self, small_grid_graph):
        timer = ModuleTimer()
        run_scheme("NG", small_grid_graph, 3, seed=0, timer=timer)
        assert "module2" not in timer.timings
        assert "module3" in timer.timings

    def test_case_insensitive(self, small_grid_graph):
        result = run_scheme("asg", small_grid_graph, 2, seed=0)
        assert result.scheme == "ASG"

    def test_unknown_scheme_rejected(self, small_grid_graph):
        with pytest.raises(PartitioningError, match="unknown scheme"):
            run_scheme("XG", small_grid_graph, 2)

    def test_stability_threshold_forwarded(self, small_grid_graph):
        plain = run_scheme("ASG", small_grid_graph, 3, epsilon_eta=0.0, seed=0)
        stable = run_scheme("ASG", small_grid_graph, 3, epsilon_eta=0.99, seed=0)
        assert stable.n_supernodes >= plain.n_supernodes

    def test_partitions_connected(self, small_grid_graph):
        for scheme in ("AG", "ASG", "NG", "NSG"):
            result = run_scheme(scheme, small_grid_graph, 3, seed=1)
            assert result.validate(small_grid_graph).is_valid, scheme

    def test_deterministic_given_seed(self, small_grid_graph):
        a = run_scheme("ASG", small_grid_graph, 3, seed=9)
        b = run_scheme("ASG", small_grid_graph, 3, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestBuilderParamForwarding:
    def test_superlink_mode_forwarded(self, small_grid_graph):
        a = run_scheme(
            "ASG", small_grid_graph, 3, superlink_mode="supernode", seed=0
        )
        b = run_scheme("ASG", small_grid_graph, 3, superlink_mode="node", seed=0)
        assert a.k == b.k == 3  # both modes produce valid partitionings

    def test_kmeans_method_forwarded(self, small_grid_graph):
        result = run_scheme(
            "ASG", small_grid_graph, 3, kmeans_method="optimal", seed=0
        )
        assert result.k == 3
        assert result.validate(small_grid_graph).is_valid

    def test_invalid_kmeans_method_raises(self, small_grid_graph):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            run_scheme("ASG", small_grid_graph, 3, kmeans_method="bogus")
