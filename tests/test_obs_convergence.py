"""Tests for repro.obs.convergence: solver telemetry on spans.

Covers the ConvergenceTrace record (recording, finish, exact JSON
round-trip under hypothesis, schema rejection), the attach/harvest
path through real spans (including the per-span cap), the
enabled/disabled gating, and the instrumented kernels — Lanczos,
both k-means variants, boundary refinement and the eigensolver
outcome record that rides into results, manifests and persistence.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import kmeans, kmeans_1d
from repro.core.boundary_refine import boundary_refine
from repro.core.spectral import (
    consume_eigensolver_outcome,
    last_eigensolver_outcome,
    smallest_eigenvectors,
)
from repro.datasets import small_network
from repro.graph.lanczos import lanczos_smallest
from repro.graph.laplacian import AlphaCutOperator
from repro.obs import ObsContext
from repro.obs.convergence import (
    CONVERGENCE_SCHEMA_VERSION,
    MAX_TRACES_PER_SPAN,
    ConvergenceTrace,
    attach_convergence,
    convergence_enabled,
    convergence_wanted,
    traces_from_attrs,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, activate_tracer
from repro.pipeline.framework import SpatialPartitioningFramework
from repro.pipeline.persistence import result_from_dict, result_to_dict


def _ring_adjacency(n: int) -> np.ndarray:
    adj = np.zeros((n, n))
    for i in range(n):
        adj[i, (i + 1) % n] = adj[(i + 1) % n, i] = 1.0
    return adj


# ----------------------------------------------------------------------
# the record itself
class TestConvergenceTrace:
    def test_record_and_n_iter(self):
        conv = ConvergenceTrace("lanczos")
        assert conv.n_iter == 0
        conv.record(beta=0.5)
        conv.record(beta=0.25, ritz=1.0)
        assert conv.n_iter == 2
        assert conv.series["beta"] == [0.5, 0.25]
        assert conv.series["ritz"] == [1.0]

    def test_finish_sets_flag_and_meta(self):
        conv = ConvergenceTrace("kmeans_1d", meta={"n": 10})
        out = conv.finish(converged=True, inertia=3.5)
        assert out is conv
        assert conv.converged is True
        assert conv.meta == {"n": 10, "inertia": 3.5}

    def test_to_dict_shape(self):
        conv = ConvergenceTrace("x", series={"r": [1.0, 0.5]}, converged=False)
        doc = conv.to_dict()
        assert doc["schema_version"] == CONVERGENCE_SCHEMA_VERSION
        assert doc["solver"] == "x"
        assert doc["n_iter"] == 2
        assert doc["converged"] is False
        json.dumps(doc)  # JSON-serialisable

    def test_from_dict_rejects_wrong_schema(self):
        doc = ConvergenceTrace("x", series={"r": [1.0]}).to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError):
            ConvergenceTrace.from_dict(doc)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ValueError):
            ConvergenceTrace.from_dict([1, 2, 3])

    @given(
        solver=st.sampled_from(
            ["lanczos", "kmeans_1d", "kmeans_nd", "boundary_refine"]
        ),
        series=st.dictionaries(
            st.text(
                alphabet="abcdefghij_", min_size=1, max_size=8
            ),
            st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                max_size=12,
            ),
            max_size=4,
        ),
        converged=st.sampled_from([None, True, False]),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, solver, series, converged):
        conv = ConvergenceTrace(solver, series=series, converged=converged)
        through_json = json.loads(json.dumps(conv.to_dict()))
        rebuilt = ConvergenceTrace.from_dict(through_json)
        assert rebuilt.solver == conv.solver
        assert rebuilt.series == conv.series
        assert rebuilt.converged == conv.converged
        assert rebuilt.to_dict() == conv.to_dict()


# ----------------------------------------------------------------------
# attach / harvest
class TestAttach:
    def test_disabled_without_any_sink(self):
        assert convergence_enabled() is False
        assert attach_convergence(ConvergenceTrace("x")) is False

    def test_enabled_with_tracer_or_metrics(self):
        with activate_tracer(Tracer()):
            assert convergence_enabled() is True
        with use_registry(MetricsRegistry()):
            assert convergence_enabled() is True

    def test_attach_to_current_span(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("solve") as span:
                assert attach_convergence(
                    ConvergenceTrace("x", series={"r": [1.0]})
                )
        harvested = traces_from_attrs(span.attrs)
        assert len(harvested) == 1
        assert harvested[0].solver == "x"

    def test_per_span_cap(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("hot") as span:
                stored = [
                    attach_convergence(ConvergenceTrace("x"))
                    for __ in range(MAX_TRACES_PER_SPAN + 3)
                ]
        assert sum(stored) == MAX_TRACES_PER_SPAN
        assert span.attrs["convergence_dropped"] == 3
        assert len(span.attrs["convergence"]) == MAX_TRACES_PER_SPAN

    def test_wanted_false_once_span_saturated(self):
        # the hot-path pre-check: once the innermost span is full,
        # solvers must not even build a trace — and each skipped run
        # still counts as dropped
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("hot") as span:
                for __ in range(MAX_TRACES_PER_SPAN):
                    assert convergence_wanted() is True
                    attach_convergence(ConvergenceTrace("x"))
                assert convergence_wanted() is False
                assert convergence_wanted() is False
        assert span.attrs["convergence_dropped"] == 2
        assert len(span.attrs["convergence"]) == MAX_TRACES_PER_SPAN

    def test_harvest_tolerates_garbage(self):
        attrs = {"convergence": [{"schema_version": 42}, "nonsense", None]}
        assert traces_from_attrs(attrs) == []
        assert traces_from_attrs(None) == []
        assert traces_from_attrs({"other": 1}) == []


# ----------------------------------------------------------------------
# instrumented kernels
class TestInstrumentedSolvers:
    def _solo_trace(self, fn):
        """Run ``fn`` under a span; return the harvested traces."""
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("host") as span:
                fn()
        return traces_from_attrs(span.attrs)

    def test_kmeans_1d_records_shift_series(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=60)
        traces = self._solo_trace(lambda: kmeans_1d(values, 3))
        solvers = [t.solver for t in traces]
        assert "kmeans_1d" in solvers
        trace = traces[solvers.index("kmeans_1d")]
        assert trace.n_iter >= 1
        assert "shift" in trace.series
        assert trace.converged is True

    def test_kmeans_nd_records_per_restart(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(80, 3))
        traces = self._solo_trace(lambda: kmeans(points, 4, n_init=2, seed=1))
        nd = [t for t in traces if t.solver == "kmeans_nd"]
        assert len(nd) == 2  # one per restart
        assert all("inertia" in t.series for t in nd)
        assert {t.meta.get("restart") for t in nd} == {0, 1}

    def test_boundary_refine_records_moves(self):
        adj = _ring_adjacency(20)
        feats = np.linspace(0.0, 1.0, 20)
        labels = (np.arange(20) >= 10).astype(int)
        traces = self._solo_trace(
            lambda: boundary_refine(adj, feats, labels, max_sweeps=3)
        )
        br = [t for t in traces if t.solver == "boundary_refine"]
        assert len(br) == 1
        assert "moves" in br[0].series
        assert br[0].converged in (True, False)

    def test_lanczos_records_beta_and_stats(self):
        adj = _ring_adjacency(40)
        stats = {}
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("host") as span:
                lanczos_smallest(AlphaCutOperator(adj), 3, stats=stats)
        traces = traces_from_attrs(span.attrs)
        assert any(t.solver == "lanczos" for t in traces)
        assert stats["iterations"] >= 1
        assert isinstance(stats["dense_fallback"], bool)

    def test_hot_loop_bounded_per_span(self):
        # thousands of kappa-scan fits under one span must not record
        # past the cap: the first MAX attach, the rest only count
        rng = np.random.default_rng(3)
        values = rng.normal(size=40)
        tracer = Tracer()
        with activate_tracer(tracer):
            with tracer.span("scan") as span:
                for __ in range(MAX_TRACES_PER_SPAN + 5):
                    kmeans_1d(values, 2)
        assert len(span.attrs["convergence"]) == MAX_TRACES_PER_SPAN
        assert span.attrs["convergence_dropped"] == 5

    def test_solvers_silent_without_obs(self):
        # no tracer, no registry: solvers run and attach nothing
        rng = np.random.default_rng(2)
        kmeans_1d(rng.normal(size=30), 2)
        assert convergence_enabled() is False


# ----------------------------------------------------------------------
# eigensolver outcome record
class TestEigensolverOutcome:
    def test_dense_outcome_recorded(self):
        consume_eigensolver_outcome()
        adj = _ring_adjacency(12)
        smallest_eigenvectors(adj, 3, method="dense")
        outcome = last_eigensolver_outcome()
        assert outcome["solver"] == "dense"
        assert outcome["converged"] is True
        assert outcome["fallback_reason"] is None
        assert outcome["residual"] < 1e-8
        assert outcome["n"] == 12 and outcome["k"] == 3

    def test_consume_clears(self):
        adj = _ring_adjacency(10)
        smallest_eigenvectors(adj, 2, method="dense")
        assert consume_eigensolver_outcome() is not None
        assert last_eigensolver_outcome() is None
        assert consume_eigensolver_outcome() is None

    def test_lanczos_outcome_has_iterations(self):
        consume_eigensolver_outcome()
        adj = _ring_adjacency(30)
        smallest_eigenvectors(adj, 2, method="lanczos")
        outcome = last_eigensolver_outcome()
        assert outcome["solver"] in ("lanczos", "dense")
        assert outcome["iterations"] >= 1
        assert outcome["residual"] < 1e-6

    def test_eigensolve_span_attrs(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            smallest_eigenvectors(_ring_adjacency(14), 3, method="dense")
        spans = [s for s in tracer.roots if s.name == "eigensolve"]
        assert len(spans) == 1
        assert spans[0].attrs["solver"] == "dense"
        assert spans[0].attrs["converged"] is True
        assert "residual" in spans[0].attrs

    def test_result_manifest_and_persistence_carry_outcome(self, tmp_path):
        network, densities = small_network(seed=7)
        network.set_densities(densities)
        framework = SpatialPartitioningFramework(k=4, scheme="ASG", seed=7)
        result = framework.partition(network)
        assert result.eigensolver is not None
        assert result.eigensolver["solver"] in ("dense", "arpack", "lanczos")
        assert result.manifest["eigensolver"] == result.eigensolver
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rebuilt.eigensolver == result.eigensolver

    def test_ncut_scheme_has_no_outcome(self):
        network, densities = small_network(seed=7)
        network.set_densities(densities)
        framework = SpatialPartitioningFramework(k=3, scheme="NG", seed=7)
        result = framework.partition(network)
        assert result.eigensolver is None
        assert "eigensolver" not in result.manifest


# ----------------------------------------------------------------------
# exports carry the telemetry
class TestExports:
    def test_convergence_survives_both_trace_exports(self):
        network, densities = small_network(seed=7)
        network.set_densities(densities)
        obs = ObsContext()
        framework = SpatialPartitioningFramework(
            k=4, scheme="ASG", seed=7, obs=obs
        )
        framework.partition(network)

        def harvest_tree(span, out):
            out.extend(traces_from_attrs(span.get("attrs")))
            for child in span.get("children", []):
                harvest_tree(child, out)

        nested = []
        for root in obs.tracer.to_dict()["spans"]:
            harvest_tree(root, nested)
        assert nested, "nested export lost the convergence traces"

        chrome = obs.tracer.to_chrome_trace()
        flat = []
        for event in chrome["traceEvents"]:
            if event.get("ph") == "X":
                flat.extend(traces_from_attrs(event.get("args")))
        assert len(flat) == len(nested)
        json.dumps(chrome)  # whole document stays JSON-clean
