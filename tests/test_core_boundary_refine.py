"""Tests for the standalone boundary refinement."""

import numpy as np
import pytest

from repro.core.boundary_refine import boundary_refine
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.distances import intra_metric
from repro.metrics.validation import check_connectivity


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestBoundaryRefine:
    def test_misplaced_boundary_node_moved(self, chain):
        feats = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        labels = [0, 0, 0, 1, 1, 1]  # node 2 belongs with the right
        refined = boundary_refine(chain.adjacency, feats, labels)
        assert refined[2] == refined[3]

    def test_perfect_partitioning_unchanged(self, chain):
        feats = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        labels = np.array([0, 0, 0, 1, 1, 1])
        refined = boundary_refine(chain.adjacency, feats, labels)
        np.testing.assert_array_equal(refined, labels)

    def test_never_disconnects(self, chain):
        feats = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0]
        labels = [0, 0, 0, 1, 1, 1]
        refined = boundary_refine(chain.adjacency, feats, labels)
        assert check_connectivity(chain.adjacency, refined) == []

    def test_never_empties_partition(self, chain):
        feats = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5]
        labels = [0, 1, 1, 1, 1, 1]
        refined = boundary_refine(chain.adjacency, feats, labels)
        assert int(refined.max()) + 1 == 2

    def test_improves_or_preserves_intra(self, small_grid_graph, rng):
        from repro.pipeline.schemes import run_scheme

        result = run_scheme("NG", small_grid_graph, 4, seed=0)
        feats = small_grid_graph.features
        refined = boundary_refine(
            small_grid_graph.adjacency, feats, result.labels
        )
        assert intra_metric(feats, refined) <= intra_metric(
            feats, result.labels
        ) + 1e-9

    def test_zero_sweeps_noop(self, chain):
        feats = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        labels = np.array([0, 0, 0, 1, 1, 1])
        refined = boundary_refine(chain.adjacency, feats, labels, max_sweeps=0)
        np.testing.assert_array_equal(refined, labels)

    def test_min_improvement_blocks_marginal_moves(self, chain):
        feats = [0.0, 0.0, 0.52, 1.0, 1.0, 1.0]
        labels = np.array([0, 0, 0, 1, 1, 1])
        # gap to right mean 0.48, to left mean ~0.35 -> marginal
        refined = boundary_refine(
            chain.adjacency, feats, labels, min_improvement=0.5
        )
        np.testing.assert_array_equal(refined, labels)

    def test_invalid_inputs(self, chain):
        with pytest.raises(PartitioningError):
            boundary_refine(chain.adjacency, [0.0] * 5, [0] * 6)
        with pytest.raises(PartitioningError):
            boundary_refine(chain.adjacency, [0.0] * 6, [0] * 5)
        with pytest.raises(PartitioningError):
            boundary_refine(chain.adjacency, [0.0] * 6, [0] * 6, max_sweeps=-1)
        with pytest.raises(PartitioningError):
            boundary_refine(
                chain.adjacency, [0.0] * 6, [0] * 6, min_improvement=-1.0
            )
