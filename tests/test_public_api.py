"""Tests for the public API surface (repro.__init__)."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing name {name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_classes_importable(self):
        from repro import (
            AlphaCutPartitioner,
            IncrementalRepartitioner,
            MultilevelPartitioner,
            NcutPartitioner,
            PartitionTracker,
            SpatialPartitioningFramework,
            Supergraph,
        )

    def test_subpackages_importable(self):
        for module in (
            "repro.analysis",
            "repro.baselines",
            "repro.clustering",
            "repro.core",
            "repro.datasets",
            "repro.graph",
            "repro.metrics",
            "repro.network",
            "repro.obs",
            "repro.pipeline",
            "repro.supergraph",
            "repro.traffic",
            "repro.util",
            "repro.viz",
        ):
            importlib.import_module(module)

    def test_docstring_example_runs(self):
        """The quickstart in the package docstring must stay valid."""
        from repro import SpatialPartitioningFramework, small_network

        network, densities = small_network(seed=7)
        framework = SpatialPartitioningFramework(k=6, scheme="ASG", seed=7)
        result = framework.partition(network, densities)
        assert sorted(result.evaluate(framework.last_road_graph)) == [
            "ans",
            "gdbi",
            "inter",
            "intra",
            "k",
        ]
