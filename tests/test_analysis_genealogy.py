"""Tests for region genealogy (merge/split detection)."""

import numpy as np
import pytest

from repro.analysis.genealogy import (
    Transition,
    classify_transition,
    genealogy,
    overlap_matrix,
)
from repro.exceptions import PartitioningError


class TestOverlapMatrix:
    def test_counts(self):
        prev = np.array([0, 0, 1, 1])
        cur = np.array([0, 1, 1, 1])
        overlap = overlap_matrix(prev, cur)
        assert overlap[0, 0] == 1
        assert overlap[0, 1] == 1
        assert overlap[1, 1] == 2

    def test_shape_mismatch(self):
        with pytest.raises(PartitioningError):
            overlap_matrix([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(PartitioningError):
            overlap_matrix([], [])


class TestClassifyTransition:
    def test_identity_is_continuation(self):
        labels = np.array([0, 0, 0, 1, 1, 1])
        t = classify_transition(labels, labels)
        assert sorted(t.continuations) == [(0, 0), (1, 1)]
        assert not t.splits and not t.merges
        assert not t.appeared and not t.disappeared

    def test_relabelled_continuation(self):
        prev = np.array([0, 0, 0, 1, 1, 1])
        cur = np.array([1, 1, 1, 0, 0, 0])
        t = classify_transition(prev, cur)
        assert sorted(t.continuations) == [(0, 1), (1, 0)]

    def test_split_detected(self):
        prev = np.array([0, 0, 0, 0, 1, 1])
        cur = np.array([0, 0, 2, 2, 1, 1])
        t = classify_transition(prev, cur)
        assert t.splits == {0: [0, 2]}
        assert (1, 1) in t.continuations

    def test_merge_detected(self):
        prev = np.array([0, 0, 2, 2, 1, 1])
        cur = np.array([0, 0, 0, 0, 1, 1])
        t = classify_transition(prev, cur)
        assert t.merges == {0: [0, 2]}
        assert (1, 1) in t.continuations

    def test_boundary_churn_still_continuation(self):
        prev = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        cur = np.array([0, 0, 0, 1, 1, 1, 1, 1])  # one node drifted
        t = classify_transition(prev, cur, threshold=0.6)
        assert sorted(t.continuations) == [(0, 0), (1, 1)]
        assert not t.splits and not t.merges

    def test_three_way_split(self):
        prev = np.zeros(9, dtype=int)
        cur = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        t = classify_transition(prev, cur)
        assert t.splits == {0: [0, 1, 2]}

    def test_invalid_threshold(self):
        labels = np.array([0, 1])
        with pytest.raises(PartitioningError):
            classify_transition(labels, labels, threshold=0.3)
        with pytest.raises(PartitioningError):
            classify_transition(labels, labels, threshold=1.5)


class TestGenealogy:
    def test_sequence(self):
        a = np.array([0, 0, 0, 0, 1, 1])
        b = np.array([0, 0, 2, 2, 1, 1])  # 0 splits
        c = np.array([0, 0, 0, 0, 1, 1])  # merges back
        transitions = genealogy([a, b, c])
        assert len(transitions) == 2
        assert transitions[0].splits == {0: [0, 2]}
        assert transitions[1].merges == {0: [0, 2]}

    def test_needs_two(self):
        with pytest.raises(PartitioningError):
            genealogy([np.array([0, 1])])

    def test_on_real_tracker_output(self, small_grid_graph):
        """Genealogy composes with the tracker on real partitionings."""
        from repro.pipeline.schemes import run_scheme

        rng = np.random.default_rng(0)
        feats = np.asarray(small_grid_graph.features)
        labelings = []
        for factor in (1.0, 1.1, 2.0):
            g = small_grid_graph.with_features(feats * factor)
            labelings.append(run_scheme("ASG", g, 3, seed=0).labels)
        transitions = genealogy(labelings)
        assert len(transitions) == 2
        for t in transitions:
            assert isinstance(t, Transition)
