"""Equivalence of the vectorized hot paths with their references.

The perf layer (sparse-incidence dual transform, prefix-sum 1-D
k-means, vectorized MCG, chunked n-D assignment) must not change any
result. These property-style tests pin the vectorized implementations
to the retained reference implementations across random networks and
datasets, including the structural edge cases called out in the paper:
star junctions (dual cliques), two-way streets (segment pairs sharing
both endpoints), and empty-cluster re-seeding.
"""

import numpy as np
import pytest

from repro.clustering.kmeans import (
    assign_to_centers,
    kmeans,
    kmeans_1d,
    kmeans_1d_reference,
    pairwise_sq_dists_reference,
)
from repro.clustering.optimality import (
    moderated_clustering_gain,
    moderated_clustering_gain_reference,
)
from repro.graph.adjacency import Graph
from repro.network.dual import (
    build_road_graph,
    segment_adjacency,
    segment_adjacency_reference,
)
from repro.network.generators import (
    grid_network,
    ring_radial_network,
    urban_network,
)
from repro.network.geometry import Point
from repro.network.model import Intersection, RoadNetwork, RoadSegment


def star_network(n_arms: int) -> RoadNetwork:
    """A single junction with ``n_arms`` two-way streets — a dual clique."""
    center = Intersection(0, Point(0.0, 0.0))
    tips = [
        Intersection(i + 1, Point(100.0 * np.cos(a), 100.0 * np.sin(a)))
        for i, a in enumerate(np.linspace(0, 2 * np.pi, n_arms, endpoint=False))
    ]
    segments = []
    sid = 0
    for i in range(n_arms):
        segments.append(RoadSegment(sid, 0, i + 1, length=100.0))
        sid += 1
        segments.append(RoadSegment(sid, i + 1, 0, length=100.0))
        sid += 1
    return RoadNetwork([center] + tips, segments)


class TestSegmentAdjacencyEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_urban_networks(self, seed):
        net = urban_network(8 + seed, 10 + seed, seed=seed)
        assert segment_adjacency(net) == segment_adjacency_reference(net)

    @pytest.mark.parametrize("two_way", [True, False])
    def test_grids(self, two_way):
        net = grid_network(5, 7, two_way=two_way)
        assert segment_adjacency(net) == segment_adjacency_reference(net)

    def test_ring_radial(self):
        net = ring_radial_network(3, 9)
        assert segment_adjacency(net) == segment_adjacency_reference(net)

    @pytest.mark.parametrize("n_arms", [2, 3, 8])
    def test_star_junction_clique(self, n_arms):
        """Star junctions must produce the full dual clique."""
        net = star_network(n_arms)
        pairs = segment_adjacency(net)
        assert pairs == segment_adjacency_reference(net)
        # all 2*n_arms segments meet at the hub: a complete clique
        m = net.n_segments
        assert len(pairs) == m * (m - 1) // 2

    def test_two_way_street_pair_adjacent_once(self):
        """Opposite directions share both endpoints but appear once."""
        net = grid_network(2, 2, two_way=True)
        pairs = segment_adjacency(net)
        assert pairs == segment_adjacency_reference(net)
        assert len(pairs) == len(set(pairs))

    def test_pairs_sorted_with_python_ints(self):
        pairs = segment_adjacency(grid_network(3, 3, two_way=True))
        assert pairs == sorted(pairs)
        assert all(isinstance(u, int) and isinstance(v, int) for u, v in pairs)
        assert all(u < v for u, v in pairs)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_build_road_graph_matches_edge_list_construction(self, seed):
        net = urban_network(9, 9, seed=seed)
        reference = Graph(
            net.n_segments,
            edges=segment_adjacency_reference(net),
            features=net.densities(),
        )
        fast = build_road_graph(net)
        assert (reference.adjacency != fast.adjacency).nnz == 0
        assert np.array_equal(reference.features, fast.features)


class TestMCGEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_identical_on_random_clusterings(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 300))
        kappa = int(rng.integers(1, min(12, n)))
        data = rng.gamma(2.0, 0.02, size=n)
        labels = rng.integers(0, kappa, size=n)
        assert moderated_clustering_gain(
            data, labels
        ) == moderated_clustering_gain_reference(data, labels)

    def test_bit_identical_with_empty_clusters(self):
        data = np.array([0.1, 0.2, 0.3, 5.0, 5.1])
        labels = np.array([0, 0, 0, 3, 3])  # clusters 1 and 2 empty
        assert moderated_clustering_gain(
            data, labels
        ) == moderated_clustering_gain_reference(data, labels)

    def test_bit_identical_on_multidimensional_data(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(80, 3))
        labels = rng.integers(0, 5, size=80)
        assert moderated_clustering_gain(
            data, labels
        ) == moderated_clustering_gain_reference(data, labels)

    def test_degenerate_single_cluster(self):
        """A cluster mean equal to the global mean contributes zero."""
        data = np.ones(10)
        labels = np.zeros(10, dtype=int)
        assert moderated_clustering_gain(data, labels) == 0.0
        assert moderated_clustering_gain_reference(data, labels) == 0.0


class TestKMeans1dEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_labels_match_reference_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 400))
        data = rng.gamma(2.0, 0.02, size=n)
        for kappa in (1, 2, min(7, n), max(min(29, n - 1), 1)):
            fast = kmeans_1d(data, kappa)
            ref = kmeans_1d_reference(data, kappa)
            assert np.array_equal(fast.labels, ref.labels)
            assert fast.centers == pytest.approx(ref.centers, rel=1e-9, abs=1e-12)
            assert fast.inertia == pytest.approx(ref.inertia, rel=1e-9, abs=1e-12)
            assert fast.n_iter == ref.n_iter

    def test_presorted_fast_path_is_bit_identical(self):
        rng = np.random.default_rng(4)
        data = rng.gamma(2.0, 0.02, size=500)
        sorted_vals = np.sort(data, kind="stable")
        for kappa in (2, 5, 17):
            plain = kmeans_1d(data, kappa)
            shared = kmeans_1d(data, kappa, presorted=sorted_vals)
            assert np.array_equal(plain.labels, shared.labels)
            assert np.array_equal(plain.centers, shared.centers)
            assert plain.inertia == shared.inertia
            assert plain.n_iter == shared.n_iter

    def test_presorted_shape_mismatch_rejected(self):
        from repro.exceptions import ClusteringError

        with pytest.raises(ClusteringError):
            kmeans_1d([1.0, 2.0, 3.0], 2, presorted=np.array([1.0, 2.0]))

    def test_empty_cluster_reseeding(self):
        """kappa above the distinct-value count forces re-seeding."""
        data = np.r_[np.zeros(10), 1e6]
        fast = kmeans_1d(data, 3)
        ref = kmeans_1d_reference(data, 3)
        assert np.array_equal(fast.labels, ref.labels)
        assert fast.centers == pytest.approx(ref.centers)

    def test_constant_values(self):
        data = np.full(8, 3.3)
        fast = kmeans_1d(data, 2)
        ref = kmeans_1d_reference(data, 2)
        assert np.array_equal(fast.labels, ref.labels)
        assert fast.centers == pytest.approx(ref.centers)

    def test_duplicated_values(self):
        data = np.r_[np.zeros(5), np.ones(5)]
        for kappa in (2, 4):
            fast = kmeans_1d(data, kappa)
            ref = kmeans_1d_reference(data, kappa)
            assert np.array_equal(fast.labels, ref.labels)

    def test_labels_in_input_order(self):
        """Labels align with the caller's (unsorted) value order."""
        data = np.array([5.0, 0.1, 4.9, 0.2])
        result = kmeans_1d(data, 2)
        assert result.labels[0] == result.labels[2]
        assert result.labels[1] == result.labels[3]
        assert result.labels[0] != result.labels[1]


class TestNDAssignmentEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_labels_match_broadcast_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 500))
        d = int(rng.integers(1, 6))
        kappa = int(rng.integers(1, 9))
        data = rng.normal(size=(n, d))
        centers = rng.normal(size=(kappa, d))
        ref_d2 = pairwise_sq_dists_reference(data, centers)
        labels, min_d2 = assign_to_centers(data, centers)
        assert np.array_equal(labels, ref_d2.argmin(axis=1))
        assert min_d2 == pytest.approx(ref_d2[np.arange(n), labels])

    def test_chunking_does_not_change_assignment(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(257, 4))
        centers = rng.normal(size=(6, 4))
        full, d2_full = assign_to_centers(data, centers, chunk_cells=1 << 30)
        tiny, d2_tiny = assign_to_centers(data, centers, chunk_cells=8)
        assert np.array_equal(full, tiny)
        # BLAS may pick different kernels per chunk shape; values agree
        # to rounding while the discrete assignment is identical
        assert d2_tiny == pytest.approx(d2_full, rel=1e-12, abs=1e-12)

    def test_full_kmeans_with_empty_cluster_reseeding(self):
        """Duplicated points force empty clusters through the new path."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=(3, 2))
        data = np.repeat(base, 5, axis=0)
        result = kmeans(data, kappa=5, seed=0)
        assert result.labels.shape == (15,)
        assert set(result.labels) <= set(range(5))
        assert result.inertia >= 0.0

    def test_kmeans_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(60, 3))
        a = kmeans(data, kappa=4, seed=42)
        b = kmeans(data, kappa=4, seed=42)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)
