"""Tests for the compare / sweep / export CLI commands."""

import csv
import json

import numpy as np
import pytest

from repro.cli import main


class TestCompareCommand:
    def test_prints_all_schemes(self, capsys):
        assert main(["compare", "D1", "-k", "4", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        for scheme in ("AG", "NG", "ASG", "NSG", "JG"):
            assert scheme in out
        assert "ans" in out


class TestSweepCommand:
    def test_writes_curves(self, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep", "D1", "--scheme", "ASG",
                "--k-min", "2", "--k-max", "5", "--out", str(out),
            ]
        )
        assert code == 0
        with open(out, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert [int(r["k"]) for r in rows] == [2, 3, 4, 5]
        assert all(float(r["ans"]) >= 0 for r in rows)

    def test_invalid_range(self, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        assert (
            main(
                ["sweep", "D1", "--k-min", "5", "--k-max", "2", "--out", str(out)]
            )
            == 1
        )


class TestExportCommand:
    def test_svg_export(self, tmp_path):
        svg = tmp_path / "out.svg"
        assert (
            main(["export", "D1", "-k", "4", "--svg", str(svg)]) == 0
        )
        content = svg.read_text(encoding="utf-8")
        assert content.startswith("<svg")
        assert "partition 0" in content

    def test_geojson_export(self, tmp_path):
        path = tmp_path / "out.geojson"
        assert (
            main(["export", "D1", "-k", "3", "--geojson", str(path)]) == 0
        )
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["type"] == "FeatureCollection"
        partitions = {f["properties"]["partition"] for f in doc["features"]}
        assert partitions == {0, 1, 2}

    def test_both_exports(self, tmp_path):
        svg = tmp_path / "o.svg"
        gj = tmp_path / "o.geojson"
        assert (
            main(
                ["export", "D1", "-k", "3", "--svg", str(svg), "--geojson", str(gj)]
            )
            == 0
        )
        assert svg.exists() and gj.exists()

    def test_no_outputs_fails(self, capsys):
        assert main(["export", "D1"]) == 1
        # diagnostics go to stderr so stdout stays pipeable
        assert "nothing to do" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_prints_reports(self, capsys):
        assert main(["analyze", "D1", "-k", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "regions:" in out
        assert "region 0" in out
        assert "boundaries" in out
        assert "critical segments" in out

    def test_scheme_selectable(self, capsys):
        assert main(["analyze", "D1", "-k", "3", "--scheme", "NG"]) == 0
        assert "via NG" in capsys.readouterr().out
