"""Tests for consensus partitioning across snapshots."""

import numpy as np
import pytest

from repro.analysis.consensus import (
    coassociation_matrix,
    consensus_partition,
    stability_map,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.validation import check_connectivity


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestCoassociation:
    def test_identical_labelings_all_ones(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        coassoc = coassociation_matrix(chain.adjacency, [labels, labels])
        # within-partition links agree fully, the boundary link never
        assert coassoc[0, 1] == 1.0
        assert coassoc[2, 3] == 0.0

    def test_half_agreement(self, chain):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        coassoc = coassociation_matrix(chain.adjacency, [a, b])
        assert coassoc[1, 2] == 0.5  # agree in a, not in b
        assert coassoc[0, 1] == 1.0

    def test_restricted_to_adjacency(self, chain):
        labels = np.zeros(6, dtype=int)
        coassoc = coassociation_matrix(chain.adjacency, [labels])
        assert coassoc[0, 5] == 0.0  # not adjacent, never scored

    def test_empty_labelings_rejected(self, chain):
        with pytest.raises(PartitioningError):
            coassociation_matrix(chain.adjacency, [])

    def test_shape_mismatch_rejected(self, chain):
        with pytest.raises(PartitioningError):
            coassociation_matrix(chain.adjacency, [np.zeros(3, int)])


class TestConsensusPartition:
    def test_stable_regions_recovered(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        consensus = consensus_partition(chain.adjacency, [labels] * 3)
        assert consensus[0] == consensus[2]
        assert consensus[3] == consensus[5]
        assert consensus[0] != consensus[3]

    def test_flapping_boundary_resolved_by_majority(self, chain):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])  # node 2 flaps
        consensus = consensus_partition(
            chain.adjacency, [a, a, b], agreement=0.5
        )
        # majority (2/3) keeps node 2 with the left region
        assert consensus[2] == consensus[1]

    def test_k_enforced_with_connected_regions(self, chain):
        rng = np.random.default_rng(0)
        labelings = [rng.integers(0, 3, size=6) for __ in range(4)]
        consensus = consensus_partition(chain.adjacency, labelings, k=2)
        assert int(consensus.max()) + 1 == 2
        assert check_connectivity(chain.adjacency, consensus) == []

    def test_agreement_one_keeps_only_unanimous_links(self, chain):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        consensus = consensus_partition(chain.adjacency, [a, b], agreement=1.0)
        # link (1,2) agreed only in a -> severed -> node 2 separate
        assert consensus[2] != consensus[1]
        assert consensus[2] != consensus[3] or consensus[1] == consensus[3]

    def test_invalid_agreement(self, chain):
        with pytest.raises(PartitioningError):
            consensus_partition(chain.adjacency, [np.zeros(6, int)], agreement=1.5)


class TestStabilityMap:
    def test_fully_stable(self, chain):
        labels = np.array([0, 0, 0, 0, 0, 0])
        stability = stability_map(chain.adjacency, [labels, labels])
        np.testing.assert_allclose(stability, 1.0)

    def test_boundary_nodes_less_stable(self, chain):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        stability = stability_map(chain.adjacency, [a, b])
        assert stability[2] < stability[0]
        assert stability[2] < stability[5]

    def test_in_unit_interval(self, chain, rng):
        labelings = [rng.integers(0, 3, size=6) for __ in range(5)]
        stability = stability_map(chain.adjacency, labelings)
        assert (stability >= 0).all() and (stability <= 1).all()


class TestAlphacutConsensus:
    def test_balanced_regions_from_drifting_snapshots(self, chain, rng):
        labelings = [rng.integers(0, 2, size=6) for __ in range(4)]
        consensus = consensus_partition(
            chain.adjacency, labelings, k=2, method="alphacut", seed=0
        )
        assert int(consensus.max()) + 1 == 2
        assert check_connectivity(chain.adjacency, consensus) == []

    def test_recovers_stable_regions(self, chain):
        labels = np.array([0, 0, 0, 1, 1, 1])
        consensus = consensus_partition(
            chain.adjacency, [labels] * 3, k=2, method="alphacut", seed=0
        )
        assert consensus[0] == consensus[2]
        assert consensus[0] != consensus[5]

    def test_requires_k(self, chain):
        with pytest.raises(PartitioningError, match="requires k"):
            consensus_partition(
                chain.adjacency, [np.zeros(6, int)], method="alphacut"
            )

    def test_invalid_method(self, chain):
        with pytest.raises(PartitioningError):
            consensus_partition(
                chain.adjacency, [np.zeros(6, int)], method="magic"
            )
