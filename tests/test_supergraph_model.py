"""Tests for the Supergraph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.supergraph.model import Supergraph
from repro.supergraph.supernode import Supernode


def _simple_supergraph():
    sns = [
        Supernode(0, [0, 1], 0.1),
        Supernode(1, [2], 0.5),
        Supernode(2, [3, 4], 0.9),
    ]
    adj = sp.csr_matrix(
        np.array([[0, 0.8, 0], [0.8, 0, 0.6], [0, 0.6, 0]])
    )
    return Supergraph(sns, adj, n_road_nodes=5)


class TestSupergraph:
    def test_sizes(self):
        sg = _simple_supergraph()
        assert sg.n_supernodes == 3
        assert sg.n_superlinks == 2
        assert sg.n_road_nodes == 5

    def test_features_and_sizes_vectors(self):
        sg = _simple_supergraph()
        np.testing.assert_allclose(sg.features(), [0.1, 0.5, 0.9])
        np.testing.assert_array_equal(sg.sizes(), [2, 1, 2])

    def test_member_of(self):
        sg = _simple_supergraph()
        np.testing.assert_array_equal(sg.member_of, [0, 0, 1, 2, 2])

    def test_member_of_readonly(self):
        sg = _simple_supergraph()
        with pytest.raises(ValueError):
            sg.member_of[0] = 5

    def test_reduction_ratio(self):
        assert _simple_supergraph().reduction_ratio() == pytest.approx(3 / 5)

    def test_expand_partition(self):
        sg = _simple_supergraph()
        node_labels = sg.expand_partition([0, 0, 1])
        np.testing.assert_array_equal(node_labels, [0, 0, 0, 1, 1])

    def test_expand_wrong_shape(self):
        with pytest.raises(GraphError):
            _simple_supergraph().expand_partition([0, 1])

    def test_as_graph(self):
        g = _simple_supergraph().as_graph()
        assert g.n_nodes == 3
        assert g.edge_weight(0, 1) == pytest.approx(0.8)
        np.testing.assert_allclose(g.features, [0.1, 0.5, 0.9])

    def test_nondense_ids_rejected(self):
        sns = [Supernode(1, [0], 0.1)]
        with pytest.raises(GraphError, match="dense"):
            Supergraph(sns, sp.csr_matrix((1, 1)), n_road_nodes=1)

    def test_adjacency_shape_mismatch_rejected(self):
        sns = [Supernode(0, [0], 0.1)]
        with pytest.raises(GraphError):
            Supergraph(sns, sp.csr_matrix((2, 2)), n_road_nodes=1)

    def test_incomplete_cover_rejected(self):
        sns = [Supernode(0, [0], 0.1)]
        with pytest.raises(GraphError):
            Supergraph(sns, sp.csr_matrix((1, 1)), n_road_nodes=2)

    def test_repr(self):
        assert "n_supernodes=3" in repr(_simple_supergraph())
