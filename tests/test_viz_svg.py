"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.viz.svg import (
    PALETTE,
    density_color,
    render_network,
    render_partitions,
    save_svg,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def network():
    net = grid_network(3, 3, spacing=100.0, two_way=True)
    net.set_densities(np.linspace(0.0, 0.15, net.n_segments))
    return net


class TestDensityColor:
    def test_zero_is_green(self):
        assert density_color(0.0, 1.0) == "#2ca02c"

    def test_max_is_red(self):
        assert density_color(1.0, 1.0) == "#d62728"

    def test_midpoint_is_yellow(self):
        assert density_color(0.5, 1.0) == "#ffdd33"

    def test_clamps_out_of_range(self):
        assert density_color(5.0, 1.0) == density_color(1.0, 1.0)
        assert density_color(-1.0, 1.0) == density_color(0.0, 1.0)

    def test_zero_vmax_safe(self):
        assert density_color(0.5, 0.0).startswith("#")


class TestRenderNetwork:
    def test_valid_xml(self, network):
        svg = render_network(network)
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_line_per_segment(self, network):
        svg = render_network(network)
        root = ET.fromstring(svg)
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == network.n_segments

    def test_custom_values(self, network):
        values = np.zeros(network.n_segments)
        svg = render_network(network, values=values)
        # all segments free-flow green
        assert svg.count("#2ca02c") >= network.n_segments

    def test_wrong_values_shape(self, network):
        with pytest.raises(DataError):
            render_network(network, values=[0.1])

    def test_title_escaped(self, network):
        svg = render_network(network, title="<rush & hour>")
        assert "&lt;rush &amp; hour&gt;" in svg

    def test_coordinates_inside_canvas(self, network):
        svg = render_network(network, width=400, height=300)
        root = ET.fromstring(svg)
        for line in root.findall(f"{SVG_NS}line"):
            for attr in ("x1", "x2"):
                assert 0 <= float(line.get(attr)) <= 400
            for attr in ("y1", "y2"):
                assert 0 <= float(line.get(attr)) <= 300


class TestRenderPartitions:
    def test_colors_match_labels(self, network):
        labels = np.arange(network.n_segments) % 3
        svg = render_partitions(network, labels)
        for i in range(3):
            assert PALETTE[i] in svg

    def test_legend_entries(self, network):
        labels = np.arange(network.n_segments) % 4
        svg = render_partitions(network, labels)
        assert "partition 0" in svg and "partition 3" in svg

    def test_legend_disabled(self, network):
        labels = np.zeros(network.n_segments, dtype=int)
        svg = render_partitions(network, labels, legend=False)
        assert "partition 0" not in svg

    def test_palette_wraps(self, network):
        labels = np.arange(network.n_segments) % network.n_segments
        svg = render_partitions(network, labels)  # > len(PALETTE) partitions
        ET.fromstring(svg)  # still valid XML

    def test_wrong_labels_shape(self, network):
        with pytest.raises(DataError):
            render_partitions(network, [0, 1])


class TestSaveSvg:
    def test_round_trip(self, network, tmp_path):
        svg = render_network(network)
        path = save_svg(svg, tmp_path / "net.svg")
        assert path.exists()
        assert path.read_text(encoding="utf-8") == svg

    def test_renders_real_partitioning(self, network, tmp_path):
        from repro.pipeline.schemes import run_scheme
        from repro.network.dual import build_road_graph

        graph = build_road_graph(network)
        result = run_scheme("ASG", graph, 3, seed=0)
        svg = render_partitions(network, result.labels)
        path = save_svg(svg, tmp_path / "partitions.svg")
        assert path.stat().st_size > 1000
