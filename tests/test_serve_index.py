"""SegmentIndex: served answers must equal the result's label array.

The serving layer is only trustworthy if it is a pure view: for every
partitioning scheme, every segment's served region must be *identical*
to ``PartitioningResult.labels`` — including after an incremental
``update()`` republished the epoch. These tests enumerate all schemes
on the small fixture networks and compare exhaustively.
"""

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.network.dual import build_road_graph
from repro.pipeline.incremental import IncrementalRepartitioner
from repro.pipeline.schemes import SCHEMES, run_scheme
from repro.serve import SegmentIndex, SnapshotStore
from repro.serve.snapshot import attach_repartitioner
from repro.shard.spatial import segment_midpoints


class TestLookupCorrectness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_segment_matches_result_labels(self, small_grid_graph, scheme):
        result = run_scheme(scheme, small_grid_graph, 4, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        for segment in range(small_grid_graph.n_nodes):
            assert index.region_of(segment) == int(result.labels[segment])

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_batch_matches_result_labels(self, small_grid_graph, scheme):
        result = run_scheme(scheme, small_grid_graph, 4, seed=1)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        ids = np.arange(small_grid_graph.n_nodes)
        np.testing.assert_array_equal(index.regions_of(ids), result.labels)
        # arbitrary order and repetition are fine too
        shuffled = np.array([5, 0, 5, 17, 3])
        np.testing.assert_array_equal(
            index.regions_of(shuffled), result.labels[shuffled]
        )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_point_lookup_resolves_to_nearest_midpoint(
        self, small_grid, small_grid_graph, scheme
    ):
        result = run_scheme(scheme, small_grid_graph, 4, seed=0)
        index = SegmentIndex.from_result(
            result, network=small_grid, graph=small_grid_graph
        )
        points = segment_midpoints(small_grid)
        # querying exactly at a midpoint must return that segment's region
        for segment in range(0, small_grid.n_segments, 7):
            found = index.lookup_point(*points[segment])
            assert found["region"] == int(result.labels[found["segment"]])
            assert np.allclose(points[found["segment"]], points[segment])

    def test_out_of_range_lookups_raise(self, small_grid_graph):
        result = run_scheme("AG", small_grid_graph, 3, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        with pytest.raises(ServeError):
            index.region_of(-1)
        with pytest.raises(ServeError):
            index.region_of(small_grid_graph.n_nodes)
        with pytest.raises(ServeError):
            index.regions_of([0, small_grid_graph.n_nodes])

    def test_labels_are_immutable(self, small_grid_graph):
        result = run_scheme("NG", small_grid_graph, 3, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        with pytest.raises(ValueError):
            index.labels[0] = 99
        # and the index is isolated from mutation of the source array
        result.labels[0] = 99
        assert index.region_of(0) != 99 or int(result.labels[0]) == 99


class TestRegionQueries:
    def test_boundary_segments_have_foreign_neighbours(self, small_grid_graph):
        result = run_scheme("ASG", small_grid_graph, 4, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        adj = small_grid_graph.adjacency.tocsr()
        labels = result.labels
        mask = index.boundary_mask()
        for segment in range(small_grid_graph.n_nodes):
            neighbours = adj.indices[adj.indptr[segment] : adj.indptr[segment + 1]]
            has_foreign = bool(
                (labels[neighbours] != labels[segment]).any()
            )
            assert bool(mask[segment]) == has_foreign

    def test_region_sizes_match_bincount(self, small_grid_graph):
        result = run_scheme("JG", small_grid_graph, 4, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        np.testing.assert_array_equal(
            index.region_sizes(), np.bincount(result.labels, minlength=index.k)
        )

    def test_region_info_fields(self, small_grid, small_grid_graph):
        result = run_scheme("ASG", small_grid_graph, 3, seed=0)
        index = SegmentIndex.from_result(
            result, network=small_grid, graph=small_grid_graph
        )
        info = index.region_info(0)
        assert info["region"] == 0
        assert info["n_segments"] == int((result.labels == 0).sum())
        assert {"x_min", "y_min", "x_max", "y_max"} <= set(info["bbox"])
        assert info["mean_density"] == pytest.approx(
            float(np.asarray(small_grid_graph.features)[result.labels == 0].mean())
        )

    def test_quality_matches_result_evaluate(self, small_grid_graph):
        result = run_scheme("ASG", small_grid_graph, 4, seed=0)
        index = SegmentIndex.from_result(result, graph=small_grid_graph)
        quality = index.quality()
        expected = result.evaluate(small_grid_graph)
        for name in ("inter", "intra", "gdbi", "ans"):
            assert quality[name] == pytest.approx(expected[name])


class TestIncrementalRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_served_labels_track_update(self, small_grid_graph, scheme):
        """After bootstrap + update, the published epoch equals the
        repartitioner's current labels — the full round-trip the
        tentpole promises."""
        store = SnapshotStore()
        repartitioner = IncrementalRepartitioner(
            small_grid_graph, k=4, scheme=scheme, seed=0
        )
        attach_repartitioner(store, repartitioner)
        densities = np.asarray(small_grid_graph.features, dtype=float)

        repartitioner.bootstrap(densities)
        snap1 = store.current()
        np.testing.assert_array_equal(snap1.index.labels, repartitioner.labels)

        # a strong localized density shift forces at least staleness checks
        shifted = densities.copy()
        shifted[: len(shifted) // 3] *= 10.0
        report = repartitioner.update(shifted)
        snap2 = store.current()
        assert snap2.epoch == snap1.epoch + 1
        np.testing.assert_array_equal(snap2.index.labels, report.labels)
        np.testing.assert_array_equal(snap2.index.labels, repartitioner.labels)
        for segment in range(small_grid_graph.n_nodes):
            assert snap2.index.region_of(segment) == int(report.labels[segment])
        store.close()

    def test_unsubscribe_stops_publishing(self, small_grid_graph):
        store = SnapshotStore()
        repartitioner = IncrementalRepartitioner(
            small_grid_graph, k=3, scheme="AG", seed=0
        )
        unsubscribe = attach_repartitioner(store, repartitioner)
        densities = np.asarray(small_grid_graph.features, dtype=float)
        repartitioner.bootstrap(densities)
        assert store.last_epoch == 1
        unsubscribe()
        repartitioner.update(densities * 100.0)
        assert store.last_epoch == 1  # no new epoch after unsubscribe
        store.close()
