"""ShardContext: zero-copy semantics and shared-memory lifecycle.

The lifecycle tests run under the shared ``shm_tracker`` fixture
(``tests/conftest.py``), which patches ``SharedMemory`` creation to
track every OS-level block name this process allocates, then asserts
each one was unlinked — on success, on worker exceptions, and on
KeyboardInterrupt. A leaked block would outlive the interpreter (it
lives in /dev/shm), so these tests are the no-leak guarantee of the
whole data plane.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ReproError
from repro.util.parallel import map_parallel
from repro.util.shm import ShardContext, active_shard, set_worker_shard, use_shard


class TestRegistrationAndAccess:
    def test_get_returns_registered_array_zero_copy(self):
        ctx = ShardContext()
        arr = np.arange(6, dtype=float)
        ctx.put("x", arr)
        assert ctx.get("x") is arr  # no copy before share()

    def test_non_contiguous_input_is_made_contiguous(self):
        ctx = ShardContext()
        arr = np.arange(12, dtype=float).reshape(3, 4).T
        ctx.put("x", arr)
        out = ctx.get("x")
        assert out.flags["C_CONTIGUOUS"]
        assert np.array_equal(out, arr)

    def test_csr_round_trip(self):
        ctx = ShardContext()
        mat = sp.random(20, 20, density=0.2, format="csr", random_state=3)
        ctx.put_csr("m", mat)
        out = ctx.get_csr("m")
        assert (out != mat.tocsr()).nnz == 0
        assert ctx.has("m") and ctx.has("m.data")

    def test_missing_names_raise(self):
        ctx = ShardContext()
        with pytest.raises(ReproError):
            ctx.get("nope")
        with pytest.raises(ReproError):
            ctx.get_csr("nope")

    def test_zero_size_array(self):
        ctx = ShardContext()
        ctx.put("empty", np.array([], dtype=float))
        with ctx:
            ctx.share()
            assert ctx.get("empty").size == 0

    def test_put_after_share_rejected(self, shm_tracker):
        with ShardContext() as ctx:
            ctx.put("a", np.ones(3))
            ctx.share()
            with pytest.raises(ReproError):
                ctx.put("b", np.ones(3))


class TestShareAttach:
    def test_share_is_idempotent(self, shm_tracker):
        with ShardContext() as ctx:
            ctx.put("x", np.arange(5, dtype=float))
            d1 = ctx.share()
            d2 = ctx.share()
            assert d1 == d2
            assert len(ctx.block_names()) == 1

    def test_attached_context_sees_owner_data(self, shm_tracker):
        arr = np.linspace(0.0, 1.0, 17)
        mat = sp.random(10, 10, density=0.3, format="csr", random_state=1)
        with ShardContext() as owner:
            owner.put("vec", arr)
            owner.put_csr("mat", mat)
            worker = ShardContext.attach(owner.share())
            try:
                assert np.array_equal(worker.get("vec"), arr)
                assert (worker.get_csr("mat") != mat.tocsr()).nnz == 0
            finally:
                worker.close()

    def test_attached_context_cannot_put_or_share(self, shm_tracker):
        with ShardContext() as owner:
            owner.put("x", np.ones(4))
            worker = ShardContext.attach(owner.share())
            try:
                with pytest.raises(ReproError):
                    worker.put("y", np.ones(2))
                with pytest.raises(ReproError):
                    worker.share()
            finally:
                worker.close()

    def test_worker_unlink_is_a_noop(self, shm_tracker):
        with ShardContext() as owner:
            owner.put("x", np.ones(4))
            worker = ShardContext.attach(owner.share())
            worker.close()
            worker.unlink()  # must NOT free the owner's blocks
            assert np.array_equal(owner.get("x"), np.ones(4))


class TestLifecycle:
    def test_blocks_unlinked_on_success(self, shm_tracker):
        with ShardContext() as ctx:
            ctx.put("x", np.arange(100.0))
            ctx.share()
            names = ctx.block_names()
        assert names  # something was created, the fixture checks unlink

    def test_blocks_unlinked_on_exception(self, shm_tracker):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardContext() as ctx:
                ctx.put("x", np.arange(50.0))
                ctx.share()
                raise RuntimeError("boom")

    def test_blocks_unlinked_on_keyboard_interrupt(self, shm_tracker):
        with pytest.raises(KeyboardInterrupt):
            with ShardContext() as ctx:
                ctx.put("x", np.arange(50.0))
                ctx.share()
                raise KeyboardInterrupt()

    def test_blocks_unlinked_on_worker_exception(self, shm_tracker):
        with pytest.raises(ValueError, match="item 2"):
            with ShardContext() as ctx:
                ctx.put("data", np.arange(10.0))
                map_parallel(_maybe_boom, range(5), workers=2, mode="process", shard=ctx)

    def test_close_is_idempotent(self, shm_tracker):
        ctx = ShardContext()
        ctx.put("x", np.ones(8))
        ctx.share()
        ctx.close()
        ctx.close()
        ctx.unlink()
        ctx.unlink()

    def test_share_after_close_rejected(self, shm_tracker):
        with ShardContext() as ctx:
            ctx.put("x", np.ones(8))
            ctx.share()
        with pytest.raises(ReproError):
            ctx.share()


def _maybe_boom(i):
    data = active_shard().get("data")
    if i == 2:
        raise ValueError("item 2")
    return float(data[i])


def _read_item(i):
    return float(active_shard().get("data")[i]) * 3.0


class TestAmbientShard:
    def test_no_shard_raises(self):
        set_worker_shard(None)
        with pytest.raises(ReproError, match="no active ShardContext"):
            active_shard()

    def test_use_shard_installs_and_restores(self):
        ctx = ShardContext()
        ctx.put("data", np.arange(4.0))
        with use_shard(ctx):
            assert active_shard() is ctx
        with pytest.raises(ReproError):
            active_shard()

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_same_fn_in_every_mode(self, mode, shm_tracker):
        with ShardContext() as ctx:
            ctx.put("data", np.arange(6.0))
            out = map_parallel(_read_item, range(6), workers=2, mode=mode, shard=ctx)
        assert out == [i * 3.0 for i in range(6)]
