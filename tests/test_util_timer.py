"""Tests for repro.util.timer."""

import time

from repro.util.timer import ModuleTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_elapsed_frozen_after_exit(self):
        with Timer() as t:
            pass
        first = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == first


class TestModuleTimer:
    def test_records_named_timing(self):
        timer = ModuleTimer()
        with timer.time("module1"):
            time.sleep(0.01)
        assert timer.timings["module1"] >= 0.01

    def test_accumulates_same_name(self):
        timer = ModuleTimer()
        timer.add("m", 1.0)
        timer.add("m", 2.5)
        assert timer.timings["m"] == 3.5

    def test_total(self):
        timer = ModuleTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total == 3.0

    def test_timings_is_copy(self):
        timer = ModuleTimer()
        timer.add("a", 1.0)
        snapshot = timer.timings
        snapshot["a"] = 99.0
        assert timer.timings["a"] == 1.0

    def test_repr_contains_names(self):
        timer = ModuleTimer()
        timer.add("module2", 0.5)
        assert "module2" in repr(timer)

    def test_exception_inside_block_still_records(self):
        timer = ModuleTimer()
        try:
            with timer.time("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "failing" in timer.timings

    def test_total_excludes_dotted_subtimings(self):
        # regression: module2.scan is a breakdown of module2, so total
        # must not double-count it
        timer = ModuleTimer()
        timer.add("module2", 4.0)
        timer.add("module2.scan", 1.5)
        timer.add("module2.fits", 2.0)
        timer.add("module3", 1.0)
        assert timer.total == 5.0
        # ... but the breakdown is still recorded individually
        assert timer.timings["module2.scan"] == 1.5

    def test_spans_mirror_timings_on_ambient_tracer(self):
        from repro.obs.trace import Tracer, activate_tracer

        tracer = Tracer()
        with activate_tracer(tracer):
            timer = ModuleTimer()
            with timer.time("module2"):
                with timer.time("module2.scan"):
                    pass
            timer.add("imported", 0.125)
        roots = {s["name"]: s for s in tracer.to_dict()["spans"]}
        assert set(roots) == {"module2", "imported"}
        children = [c["name"] for c in roots["module2"].get("children", [])]
        assert children == ["module2.scan"]
        assert roots["imported"]["duration_s"] == 0.125

    def test_timer_without_tracer_records_no_spans(self):
        timer = ModuleTimer()
        with timer.time("m"):
            pass
        assert timer.tracer is None
        assert timer.timings["m"] >= 0.0
