"""Tests for repro.graph.affinity."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.affinity import congestion_affinity


class TestCongestionAffinity:
    def test_same_sparsity_pattern(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)], features=[0, 1, 2, 3])
        aff = congestion_affinity(g)
        assert aff.nnz == g.adjacency.nnz

    def test_similar_features_weight_near_one(self):
        g = Graph(3, edges=[(0, 1), (1, 2)], features=[1.0, 1.0, 10.0])
        aff = congestion_affinity(g)
        assert aff[0, 1] == pytest.approx(1.0)
        assert aff[1, 2] < aff[0, 1]

    def test_weights_in_unit_interval(self):
        rng = np.random.default_rng(0)
        feats = rng.random(10)
        edges = [(i, i + 1) for i in range(9)]
        aff = congestion_affinity(Graph(10, edges=edges, features=feats))
        assert aff.data.min() > 0.0
        assert aff.data.max() <= 1.0

    def test_symmetric(self):
        g = Graph(3, edges=[(0, 1), (1, 2)], features=[0.0, 0.5, 1.0])
        aff = congestion_affinity(g)
        assert (abs(aff - aff.T) > 1e-15).nnz == 0

    def test_zero_variance_gives_unit_weights(self):
        g = Graph(3, edges=[(0, 1), (1, 2)], features=[2.0, 2.0, 2.0])
        aff = congestion_affinity(g)
        np.testing.assert_allclose(aff.data, 1.0)

    def test_custom_sigma2(self):
        g = Graph(2, edges=[(0, 1)], features=[0.0, 1.0])
        wide = congestion_affinity(g, sigma2=100.0)
        narrow = congestion_affinity(g, sigma2=0.01)
        assert wide[0, 1] > narrow[0, 1]

    def test_negative_sigma2_raises(self):
        g = Graph(2, edges=[(0, 1)])
        with pytest.raises(GraphError):
            congestion_affinity(g, sigma2=-1.0)
