"""Tests for the from-scratch Lanczos eigensolver."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.laplacian import AlphaCutOperator, alpha_cut_matrix
from repro.graph.lanczos import (
    lanczos_smallest,
    lanczos_tridiagonalize,
)


def _ring_with_chords(n=60, chord=7):
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + chord) % n) for i in range(n)]
    return Graph(n, edges=edges)


class TestTridiagonalize:
    def test_basis_orthonormal(self, rng):
        g = _ring_with_chords(40)
        __, __, basis = lanczos_tridiagonalize(g.adjacency, 20, seed=0)
        gram = basis.T @ basis
        np.testing.assert_allclose(gram, np.eye(basis.shape[1]), atol=1e-10)

    def test_projection_identity(self):
        """Q^T A Q equals the tridiagonal matrix built from alpha/beta."""
        g = _ring_with_chords(30)
        alphas, betas, basis = lanczos_tridiagonalize(g.adjacency, 12, seed=0)
        tri = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
        projected = basis.T @ (g.adjacency @ basis)
        np.testing.assert_allclose(projected, tri, atol=1e-8)

    def test_full_dimension_recovers_spectrum(self):
        """With random weights the spectrum is simple, so a full
        Krylov space recovers every eigenvalue. (Symmetric graphs have
        degenerate eigenvalues, of which Lanczos sees one copy each —
        that's inherent to the method, not a bug.)"""
        rng = np.random.default_rng(3)
        n = 16
        edges = [
            (i, (i + 1) % n, float(rng.uniform(0.1, 1.0))) for i in range(n)
        ]
        edges += [
            (i, (i + 7) % n, float(rng.uniform(0.1, 1.0))) for i in range(n)
        ]
        g = Graph(n, edges=edges)
        alphas, betas, __ = lanczos_tridiagonalize(g.adjacency, n, seed=0)
        tri = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
        lanczos_eigs = np.sort(np.linalg.eigvalsh(tri))
        true_eigs = np.sort(np.linalg.eigvalsh(g.adjacency.toarray()))
        np.testing.assert_allclose(lanczos_eigs, true_eigs, atol=1e-7)

    def test_invalid_m(self):
        g = _ring_with_chords(10)
        with pytest.raises(GraphError):
            lanczos_tridiagonalize(g.adjacency, 0)
        with pytest.raises(GraphError):
            lanczos_tridiagonalize(g.adjacency, 99)

    def test_invalid_operator(self):
        with pytest.raises(GraphError):
            lanczos_tridiagonalize("not-a-matrix", 3)
        with pytest.raises(GraphError):
            lanczos_tridiagonalize(np.zeros((2, 3)), 1)


class TestLanczosSmallest:
    def test_matches_dense_on_alpha_cut_matrix(self):
        g = _ring_with_chords(50)
        operator = AlphaCutOperator(g.adjacency)
        values, vectors = lanczos_smallest(operator, 4, seed=0)
        dense = np.linalg.eigvalsh(alpha_cut_matrix(g.adjacency))
        np.testing.assert_allclose(values, dense[:4], atol=1e-6)

    def test_vectors_satisfy_eigen_equation(self):
        g = _ring_with_chords(40)
        m = alpha_cut_matrix(g.adjacency)
        values, vectors = lanczos_smallest(m, 3, seed=0)
        for i in range(3):
            np.testing.assert_allclose(
                m @ vectors[:, i], values[i] * vectors[:, i], atol=1e-5
            )

    def test_unit_norm_vectors(self):
        g = _ring_with_chords(30)
        __, vectors = lanczos_smallest(g.adjacency, 3, seed=0)
        np.testing.assert_allclose(np.linalg.norm(vectors, axis=0), 1.0)

    def test_values_ascending(self):
        g = _ring_with_chords(30)
        values, __ = lanczos_smallest(g.adjacency, 5, seed=0)
        assert (np.diff(values) >= -1e-10).all()

    def test_deterministic_given_seed(self):
        g = _ring_with_chords(30)
        a, __ = lanczos_smallest(g.adjacency, 3, seed=7)
        b, __ = lanczos_smallest(g.adjacency, 3, seed=7)
        np.testing.assert_allclose(a, b)

    def test_disconnected_graph_fallback(self):
        """Invariant subspaces trigger the dense fallback path."""
        g = Graph(8, edges=[(0, 1), (2, 3), (4, 5), (6, 7)])
        values, __ = lanczos_smallest(g.adjacency, 6, m=8, seed=0)
        dense = np.linalg.eigvalsh(g.adjacency.toarray())
        np.testing.assert_allclose(np.sort(values), dense[:6], atol=1e-6)

    def test_invalid_k(self):
        g = _ring_with_chords(10)
        with pytest.raises(GraphError):
            lanczos_smallest(g.adjacency, 0)
        with pytest.raises(GraphError):
            lanczos_smallest(g.adjacency, 3, m=2)


class TestSpectralIntegration:
    def test_method_lanczos_in_spectral_stage(self):
        from repro.core.spectral import smallest_eigenvectors

        g = _ring_with_chords(45)
        lan_vals, __ = smallest_eigenvectors(g.adjacency, 3, method="lanczos")
        dense_vals, __ = smallest_eigenvectors(g.adjacency, 3, method="dense")
        np.testing.assert_allclose(lan_vals, dense_vals, atol=1e-6)

    def test_invalid_method_rejected(self, two_cliques):
        from repro.core.spectral import smallest_eigenvectors
        from repro.exceptions import PartitioningError

        with pytest.raises(PartitioningError):
            smallest_eigenvectors(two_cliques.adjacency, 2, method="magic")
