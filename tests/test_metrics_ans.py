"""Tests for the average NcutSilhouette."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.ans import ans, ncut_silhouette


@pytest.fixture
def chain():
    return Graph(6, edges=[(i, i + 1) for i in range(5)])


class TestAns:
    def test_perfect_partitioning_zero(self, chain):
        feats = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        assert ans(feats, [0, 0, 0, 1, 1, 1], chain.adjacency) == pytest.approx(
            0.0
        )

    def test_lower_for_better_partitioning(self, chain):
        feats = [0.0, 0.1, 0.05, 1.0, 0.9, 1.05]
        good = ans(feats, [0, 0, 0, 1, 1, 1], chain.adjacency)
        bad = ans(feats, [0, 0, 1, 1, 2, 2], chain.adjacency)
        assert good < bad

    def test_nonnegative(self, chain, rng):
        feats = rng.random(6)
        assert ans(feats, [0, 0, 1, 1, 2, 2], chain.adjacency) >= 0.0

    def test_single_partition_zero(self, chain):
        feats = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        # no adjacent partitions to contrast against
        assert ans(feats, [0] * 6, chain.adjacency) == 0.0

    def test_matches_naive_computation(self, chain, rng):
        """Cross-check the moment-based formula against the O(n^2)
        definition."""
        feats = rng.random(6)
        labels = np.array([0, 0, 0, 1, 1, 1])
        fast = ans(feats, labels, chain.adjacency)

        def naive_ns(i):
            members = np.flatnonzero(labels == i)
            others = np.flatnonzero(labels != i)  # all partitions adjacent here
            ratios = []
            for v in members:
                a = np.mean([(feats[v] - feats[u]) ** 2 for u in members if u != v])
                b = np.mean([(feats[v] - feats[u]) ** 2 for u in others])
                ratios.append(a / b if b > 0 else 0.0)
            return np.mean(ratios)

        naive = np.mean([naive_ns(0), naive_ns(1)])
        assert fast == pytest.approx(naive)

    def test_per_partition_silhouette(self, chain):
        feats = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        labels = [0, 0, 0, 1, 1, 1]
        assert ncut_silhouette(feats, labels, chain.adjacency, 0) == pytest.approx(
            0.0
        )

    def test_partition_index_checked(self, chain):
        with pytest.raises(PartitioningError):
            ncut_silhouette([0.0] * 6, [0] * 6, chain.adjacency, 5)

    def test_empty_partition_rejected(self, chain):
        with pytest.raises(PartitioningError):
            ans([0.0] * 6, [0, 0, 0, 2, 2, 2], chain.adjacency)

    def test_singleton_partition_handled(self, chain):
        feats = [0.0, 0.0, 0.5, 1.0, 1.0, 1.0]
        labels = [0, 0, 1, 2, 2, 2]
        value = ans(feats, labels, chain.adjacency)
        assert np.isfinite(value) and value >= 0.0
