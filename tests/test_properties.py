"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.kmeans import kmeans_1d
from repro.clustering.optimality import (
    clustering_gain,
    moderated_clustering_gain,
)
from repro.core.alpha_cut import alpha_cut_quadratic_value, alpha_cut_value
from repro.graph.adjacency import Graph
from repro.graph.components import connected_components, is_connected
from repro.metrics.distances import mean_abs_cross, mean_abs_pairwise
from repro.metrics.partition_quality import (
    cost_of_partitioning,
    partition_volume,
)
from repro.supergraph.stability import stability

# -- strategies ---------------------------------------------------------

densities = arrays(
    dtype=float,
    shape=st.integers(min_value=4, max_value=40),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@st.composite
def random_graph(draw, min_nodes=4, max_nodes=16):
    """A random undirected weighted graph with >= 1 edge."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(u, v, w) for (u, v), w in zip(chosen, weights)]
    return Graph(n, edges=edges)


@st.composite
def graph_with_labels(draw):
    g = draw(random_graph())
    labels = draw(
        st.lists(
            st.integers(0, 3), min_size=g.n_nodes, max_size=g.n_nodes
        )
    )
    __, dense = np.unique(labels, return_inverse=True)
    return g, dense


# -- k-means ------------------------------------------------------------


class TestKmeansProperties:
    @given(values=densities, kappa=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_labels_within_range_and_inertia_nonnegative(self, values, kappa):
        kappa = min(kappa, len(values))
        result = kmeans_1d(values, kappa)
        assert result.labels.min() >= 0
        assert result.labels.max() < kappa
        assert result.inertia >= 0.0

    @given(values=densities)
    @settings(max_examples=40, deadline=None)
    def test_nearest_center_assignment(self, values):
        kappa = min(3, len(values))
        result = kmeans_1d(values, kappa)
        d = np.abs(np.asarray(values)[:, None] - result.centers[None, :])
        best = d[np.arange(len(values)), result.labels]
        assert (best <= d.min(axis=1) + 1e-12).all()


class TestOptimalityProperties:
    @given(values=densities, kappa=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_mcg_bounded_by_gain(self, values, kappa):
        kappa = min(kappa, len(values))
        labels = kmeans_1d(values, kappa).labels
        mcg = moderated_clustering_gain(values, labels)
        gain = clustering_gain(values, labels)
        assert 0.0 <= mcg <= gain + 1e-9


# -- stability ----------------------------------------------------------


class TestStabilityProperties:
    @given(
        feats=arrays(
            dtype=float,
            shape=st.integers(1, 30),
            elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stability_in_unit_interval(self, feats):
        assert 0.0 <= stability(feats) <= 1.0

    @given(
        value=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        n=st.integers(1, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_constant_supernode_fully_stable(self, value, n):
        assert stability([value] * n) == pytest.approx(1.0)


# -- graph invariants ----------------------------------------------------


class TestGraphProperties:
    @given(g=random_graph())
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, g):
        comp = connected_components(g.adjacency)
        assert comp.shape == (g.n_nodes,)
        # each component is internally connected
        for cid in range(comp.max() + 1):
            members = np.flatnonzero(comp == cid)
            assert is_connected(g.adjacency, members)

    @given(g=random_graph())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_total_weight(self, g):
        assert g.degree().sum() == pytest.approx(2.0 * g.total_weight())


# -- alpha-cut equivalences ----------------------------------------------


class TestAlphaCutProperties:
    @given(data=graph_with_labels())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_eq5_equals_eq6(self, data):
        g, labels = data
        assert alpha_cut_value(g.adjacency, labels) == pytest.approx(
            alpha_cut_quadratic_value(g.adjacency, labels), abs=1e-8
        )

    @given(data=graph_with_labels())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cost_plus_volume_conserved(self, data):
        g, labels = data
        total = g.total_weight()
        cost = cost_of_partitioning(g.adjacency, labels)
        volume = partition_volume(g.adjacency, labels)
        assert cost + volume == pytest.approx(total)


# -- metric helpers -------------------------------------------------------


class TestDistanceProperties:
    @given(values=densities)
    @settings(max_examples=40, deadline=None)
    def test_mean_abs_pairwise_nonnegative(self, values):
        assert mean_abs_pairwise(values) >= 0.0

    @given(x=densities, y=densities)
    @settings(max_examples=40, deadline=None)
    def test_mean_abs_cross_symmetric(self, x, y):
        assert mean_abs_cross(x, y) == pytest.approx(mean_abs_cross(y, x))

    @given(values=densities, shift=st.floats(0.0, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_mean_abs_pairwise_translation_invariant(self, values, shift):
        assert mean_abs_pairwise(values) == pytest.approx(
            mean_abs_pairwise(np.asarray(values) + shift), abs=1e-9
        )
