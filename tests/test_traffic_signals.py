"""Tests for traffic signals and their simulator coupling."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.traffic.signals import TrafficSignal, signalize
from repro.traffic.simulator import MicroSimulator


class TestTrafficSignal:
    def test_cycle_length(self):
        signal = TrafficSignal(phases=[[0], [1]], durations=[3, 2])
        assert signal.cycle_length == 5

    def test_active_phase_progression(self):
        signal = TrafficSignal(phases=[[0], [1]], durations=[2, 2])
        assert [signal.active_phase(t) for t in range(5)] == [0, 0, 1, 1, 0]

    def test_allows_follows_phase(self):
        signal = TrafficSignal(phases=[[0], [1]], durations=[2, 2])
        assert signal.allows(0, 0) and not signal.allows(1, 0)
        assert signal.allows(1, 2) and not signal.allows(0, 2)

    def test_ungoverned_segment_always_allowed(self):
        signal = TrafficSignal(phases=[[0], [1]], durations=[1, 1])
        assert signal.allows(99, 0) and signal.allows(99, 1)

    def test_offset_shifts_cycle(self):
        base = TrafficSignal(phases=[[0], [1]], durations=[2, 2])
        shifted = TrafficSignal(phases=[[0], [1]], durations=[2, 2], offset=2)
        assert shifted.active_phase(0) == base.active_phase(2)

    def test_validation(self):
        with pytest.raises(DataError):
            TrafficSignal(phases=[], durations=[])
        with pytest.raises(DataError):
            TrafficSignal(phases=[[0]], durations=[1, 2])
        with pytest.raises(DataError):
            TrafficSignal(phases=[[0], [0]], durations=[1, 1])
        with pytest.raises(DataError):
            TrafficSignal(phases=[[0], [1]], durations=[1, 0])


class TestSignalize:
    @pytest.fixture(scope="class")
    def network(self):
        return grid_network(5, 5, spacing=100.0, two_way=True)

    def test_interior_junctions_signalised(self, network):
        signals = signalize(network)
        # interior nodes of a two-way grid have 4 incoming approaches
        assert len(signals) >= 9  # the 3x3 interior at minimum

    def test_phases_split_by_bearing(self, network):
        signals = signalize(network)
        iid, signal = next(iter(signals.items()))
        assert len(signal.phases) == 2
        assert signal.phases[0] and signal.phases[1]

    def test_phase_members_are_incoming(self, network):
        signals = signalize(network)
        for iid, signal in signals.items():
            incoming = set(network.incoming(iid))
            for phase in signal.phases:
                assert set(phase) <= incoming

    def test_min_approaches_filter(self, network):
        few = signalize(network, min_approaches=4)
        many = signalize(network, min_approaches=3)
        assert len(few) <= len(many)

    def test_invalid_args(self, network):
        with pytest.raises(DataError):
            signalize(network, green_steps=0)
        with pytest.raises(DataError):
            signalize(network, min_approaches=1)


class TestSignalsInSimulator:
    @pytest.fixture(scope="class")
    def network(self):
        return grid_network(5, 5, spacing=100.0, two_way=True)

    def test_signals_slow_trips(self, network):
        free = MicroSimulator(network, seed=0).run(n_vehicles=60, n_steps=40)
        signals = signalize(network, green_steps=3)
        held = MicroSimulator(network, seed=0).run(
            n_vehicles=60, n_steps=40, signals=signals
        )
        assert held.completed_trips <= free.completed_trips

    def test_signals_build_queues(self, network):
        signals = signalize(network, green_steps=4)
        result = MicroSimulator(network, seed=0).run(
            n_vehicles=200, n_steps=40, signals=signals
        )
        baseline = MicroSimulator(network, seed=0).run(
            n_vehicles=200, n_steps=40
        )
        # red phases hold vehicles on the network longer
        assert result.counts.sum() >= baseline.counts.sum()

    def test_conservation_with_signals(self, network):
        signals = signalize(network)
        result = MicroSimulator(network, seed=1).run(
            n_vehicles=50, n_steps=30, signals=signals
        )
        assert result.counts.sum(axis=1).max() <= 50

    def test_reproducible(self, network):
        signals = signalize(network)
        a = MicroSimulator(network, seed=2).run(
            n_vehicles=40, n_steps=20, signals=signals
        )
        b = MicroSimulator(network, seed=2).run(
            n_vehicles=40, n_steps=20, signals=signals
        )
        np.testing.assert_array_equal(a.counts, b.counts)
