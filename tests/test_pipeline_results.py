"""Tests for the PartitioningResult container."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.pipeline.results import PartitioningResult


@pytest.fixture
def graph():
    return Graph(
        5,
        edges=[(0, 1), (1, 2), (2, 3), (3, 4)],
        features=[0.0, 0.1, 0.5, 0.6, 1.0],
    )


class TestPartitioningResult:
    def test_k_auto_computed(self):
        result = PartitioningResult(labels=np.array([0, 1, 2, 1]))
        assert result.k == 3

    def test_explicit_k_kept(self):
        result = PartitioningResult(labels=np.array([0, 0, 1]), k=2)
        assert result.k == 2

    def test_empty_labels_rejected(self):
        with pytest.raises(PartitioningError):
            PartitioningResult(labels=np.array([]))

    def test_total_time(self):
        result = PartitioningResult(
            labels=np.array([0, 1]), timings={"a": 1.0, "b": 0.5}
        )
        assert result.total_time == 1.5

    def test_partition_sizes(self):
        result = PartitioningResult(labels=np.array([0, 0, 1, 2, 2]))
        np.testing.assert_array_equal(result.partition_sizes(), [2, 1, 2])

    def test_evaluate_keys(self, graph):
        result = PartitioningResult(labels=np.array([0, 0, 1, 1, 1]))
        metrics = result.evaluate(graph)
        assert set(metrics) == {"k", "inter", "intra", "gdbi", "ans"}

    def test_validate_detects_disconnection(self, graph):
        result = PartitioningResult(labels=np.array([0, 1, 1, 1, 0]))
        assert not result.validate(graph).is_valid

    def test_labels_coerced_to_int(self):
        result = PartitioningResult(labels=[0.0, 1.0, 1.0])
        assert result.labels.dtype == np.dtype(int)
        assert result.k == 2

    def test_scheme_and_supernodes_metadata(self):
        result = PartitioningResult(
            labels=np.array([0, 1]), scheme="ASG", n_supernodes=7
        )
        assert result.scheme == "ASG"
        assert result.n_supernodes == 7
