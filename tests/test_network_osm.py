"""Tests for the minimal OSM XML reader."""

import pytest

from repro.exceptions import DataError
from repro.network.osm import load_osm_xml

_OSM_SAMPLE = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="0.000" lon="0.000"/>
  <node id="2" lat="0.001" lon="0.000"/>
  <node id="3" lat="0.002" lon="0.000"/>
  <node id="4" lat="0.001" lon="0.001"/>
  <way id="10">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="Main Street"/>
  </way>
  <way id="11">
    <nd ref="2"/><nd ref="4"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
    <tag k="maxspeed" v="60"/>
    <tag k="lanes" v="2"/>
  </way>
  <way id="12">
    <nd ref="3"/><nd ref="4"/>
    <tag k="highway" v="footway"/>
  </way>
</osm>
"""


@pytest.fixture
def osm_file(tmp_path):
    path = tmp_path / "sample.osm"
    path.write_text(_OSM_SAMPLE)
    return path


class TestLoadOsm:
    def test_parses_network(self, osm_file):
        net = load_osm_xml(osm_file)
        # junctions: 1, 2, 3, 4 (2 shared; 1/3/4 endpoints)
        assert net.n_intersections == 4

    def test_way_split_at_junction(self, osm_file):
        net = load_osm_xml(osm_file)
        # way 10 splits at node 2 -> 2 streets two-way = 4 segments;
        # way 11 oneway -> 1 segment; footway ignored
        assert net.n_segments == 5

    def test_oneway_honoured(self, osm_file):
        net = load_osm_xml(osm_file)
        directed = {(s.source, s.target) for s in net.segments}
        reversed_pairs = {(t, s) for (s, t) in directed}
        one_way_count = len(directed - reversed_pairs)
        assert one_way_count == 1

    def test_maxspeed_and_lanes_parsed(self, osm_file):
        net = load_osm_xml(osm_file)
        fast = [s for s in net.segments if s.lanes == 2]
        assert len(fast) == 1
        assert fast[0].speed_limit == pytest.approx(60 / 3.6)

    def test_street_name_kept(self, osm_file):
        net = load_osm_xml(osm_file)
        assert any(s.name == "Main Street" for s in net.segments)

    def test_no_drivable_ways_raises(self, tmp_path):
        path = tmp_path / "empty.osm"
        path.write_text('<?xml version="1.0"?><osm version="0.6"></osm>')
        with pytest.raises(DataError, match="no drivable"):
            load_osm_xml(path)

    def test_invalid_xml_raises(self, tmp_path):
        path = tmp_path / "broken.osm"
        path.write_text("<osm><way>")
        with pytest.raises(DataError, match="invalid OSM XML"):
            load_osm_xml(path)

    def test_positive_segment_lengths(self, osm_file):
        net = load_osm_xml(osm_file)
        assert all(s.length > 0 for s in net.segments)
