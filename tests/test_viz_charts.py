"""Tests for the SVG chart renderers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.mfd import RegionMFD
from repro.exceptions import DataError
from repro.viz.charts import render_mfd, render_series

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def mfd():
    rng = np.random.default_rng(0)
    acc = np.linspace(0, 80, 50)
    flow = 1.5 * acc - 0.012 * acc**2 + rng.normal(0, 1.5, 50)
    return RegionMFD(1, acc, np.maximum(flow, 0))


class TestRenderMfd:
    def test_valid_xml(self, mfd):
        root = ET.fromstring(render_mfd(mfd))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_circle_per_sample(self, mfd):
        root = ET.fromstring(render_mfd(mfd))
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == mfd.accumulation.size

    def test_fit_curve_present(self, mfd):
        root = ET.fromstring(render_mfd(mfd))
        assert root.findall(f"{SVG_NS}polyline")

    def test_default_title(self, mfd):
        assert "MFD of region 1" in render_mfd(mfd)

    def test_custom_title_escaped(self, mfd):
        svg = render_mfd(mfd, title="a < b")
        assert "a &lt; b" in svg

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            render_mfd(RegionMFD(0, np.array([]), np.array([])))

    def test_constant_accumulation_no_fit(self):
        mfd = RegionMFD(0, np.full(5, 3.0), np.arange(5.0))
        root = ET.fromstring(render_mfd(mfd))
        assert not root.findall(f"{SVG_NS}polyline")  # nothing to fit


class TestRenderSeries:
    def test_valid_xml(self):
        svg = render_series({"region 0": [1, 2, 3], "region 1": [3, 2, 1]})
        root = ET.fromstring(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_legend_labels(self):
        svg = render_series({"core": [0.1, 0.2], "ring": [0.2, 0.1]})
        assert "core" in svg and "ring" in svg

    def test_coordinates_inside_canvas(self):
        svg = render_series({"a": np.linspace(0, 10, 30)}, width=300, height=200)
        root = ET.fromstring(svg)
        for line in root.findall(f"{SVG_NS}polyline"):
            for pair in line.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= 300 and 0 <= y <= 200

    def test_validation(self):
        with pytest.raises(DataError):
            render_series({})
        with pytest.raises(DataError):
            render_series({"a": [1, 2], "b": [1]})
        with pytest.raises(DataError):
            render_series({"a": []})

    def test_from_real_simulation(self, small_grid):
        from repro.analysis.mfd import region_mfd
        from repro.traffic.simulator import MicroSimulator

        result = MicroSimulator(small_grid, seed=0).run(
            n_vehicles=150, n_steps=30
        )
        labels = np.zeros(small_grid.n_segments, dtype=int)
        svg = render_mfd(region_mfd(result, labels, 0))
        ET.fromstring(svg)
