"""Tests for repro.obs.trace — spans, tracer, exporters, decorator."""

import json
import threading

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    activate_tracer,
    current_tracer,
    traced,
    validate_chrome_trace,
)


class TestSpanNesting:
    def test_single_span(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tree = tracer.to_dict()
        assert len(tree["spans"]) == 1
        span = tree["spans"][0]
        assert span["name"] == "work"
        assert span["duration_s"] >= 0.0
        assert "children" not in span  # leaf spans omit the empty list

    def test_nested_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        tree = tracer.to_dict()
        assert [s["name"] for s in tree["spans"]] == ["outer"]
        children = tree["spans"][0]["children"]
        assert [c["name"] for c in children] == ["inner_a", "inner_b"]

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("run", scheme="ASG", k=6):
            pass
        span = tracer.to_dict()["spans"][0]
        assert span["attrs"] == {"scheme": "ASG", "k": 6}

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        tree = tracer.to_dict()
        assert tree["spans"][0]["name"] == "failing"
        assert tracer.current is None

    def test_record_synthetic_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.record("leaf", 0.25, source="timer")
        child = tracer.to_dict()["spans"][0]["children"][0]
        assert child["name"] == "leaf"
        assert child["duration_s"] == pytest.approx(0.25)
        assert child["attrs"] == {"source": "timer"}


class TestChromeExport:
    def _make(self):
        tracer = Tracer()
        with tracer.span("run", scheme="ASG"):
            with tracer.span("module1"):
                pass
            with tracer.span("module2"):
                pass
        return tracer

    def test_validates_and_round_trips_json(self):
        doc = self._make().to_chrome_trace()
        validate_chrome_trace(doc)
        reparsed = json.loads(json.dumps(doc))
        assert reparsed["traceEvents"]

    def test_event_structure(self):
        doc = self._make().to_chrome_trace(metadata={"run_id": "r1"})
        events = doc["traceEvents"]
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert {ev["name"] for ev in complete} == {"run", "module1", "module2"}
        run = next(ev for ev in complete if ev["name"] == "run")
        for child_name in ("module1", "module2"):
            child = next(ev for ev in complete if ev["name"] == child_name)
            assert child["ts"] >= run["ts"]
            assert child["ts"] + child["dur"] <= run["ts"] + run["dur"]
        assert run["args"] == {"scheme": "ASG"}
        assert doc["otherData"] == {"run_id": "r1"}

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Q", "pid": 0, "tid": 0}]}
            )


class TestAmbientTracer:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_activate_scopes_tracer(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_traced_decorator_noop_without_tracer(self):
        @traced()
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_traced_decorator_records_span(self):
        @traced(name="custom", kind="test")
        def add(a, b):
            return a + b

        tracer = Tracer()
        with activate_tracer(tracer):
            assert add(2, 3) == 5
        span = tracer.to_dict()["spans"][0]
        assert span["name"] == "custom"
        assert span["attrs"] == {"kind": "test"}


class TestThreading:
    def test_spans_from_worker_threads_get_own_lane(self):
        tracer = Tracer()
        # both workers must be alive at once: CPython reuses the thread
        # ident of a finished thread, which would legitimately merge
        # the lanes of sequential workers
        barrier = threading.Barrier(2)

        def work():
            barrier.wait(timeout=30)
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            threads = [threading.Thread(target=work) for __ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        doc = tracer.to_chrome_trace()
        complete = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        main_tid = next(ev["tid"] for ev in complete if ev["name"] == "main")
        worker_tids = {ev["tid"] for ev in complete if ev["name"] == "worker"}
        assert main_tid not in worker_tids
        assert len(worker_tids) == 2
        validate_chrome_trace(doc)


class TestTraceparent:
    """W3C trace-context header handling (make/parse round trips)."""

    def test_make_default_is_valid_and_random(self):
        from repro.obs.trace import make_traceparent, parse_traceparent

        a, b = make_traceparent(), make_traceparent()
        assert a != b  # fresh random ids
        parsed = parse_traceparent(a)
        assert parsed is not None
        trace_id, parent_id, sampled = parsed
        assert len(trace_id) == 32 and len(parent_id) == 16
        assert sampled is True

    def test_explicit_ids_round_trip(self):
        from repro.obs.trace import make_traceparent, parse_traceparent

        header = make_traceparent(
            trace_id="0af7651916cd43dd8448eb211c80319c",
            parent_id="b7ad6b7169203331",
            sampled=False,
        )
        assert header == "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"
        assert parse_traceparent(header) == (
            "0af7651916cd43dd8448eb211c80319c",
            "b7ad6b7169203331",
            False,
        )

    def test_make_rejects_bad_ids(self):
        from repro.exceptions import DataError
        from repro.obs.trace import make_traceparent

        for bad in ("short", "Z" * 32, "0" * 32):
            with pytest.raises(DataError):
                make_traceparent(trace_id=bad)
        with pytest.raises(DataError):
            make_traceparent(parent_id="0" * 16)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "junk",
            "00-abc-def-01",  # ids too short
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero parent id
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "ff-" + "1" * 32 + "-" + "1" * 16 + "-01",  # forbidden version
            "00-" + "1" * 32 + "-" + "1" * 16 + "-01-extra",  # v00 is 4 parts
            "0-" + "1" * 32 + "-" + "1" * 16 + "-01",  # 1-char version
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        from repro.obs.trace import parse_traceparent

        assert parse_traceparent(header) is None

    def test_bytes_and_whitespace_accepted(self):
        from repro.obs.trace import parse_traceparent

        header = "  00-" + "a" * 32 + "-" + "b" * 16 + "-01  "
        assert parse_traceparent(header) is not None
        assert parse_traceparent(header.encode()) is not None

    def test_future_version_with_extra_fields_accepted(self):
        # per W3C: unknown versions parse leniently if the prefix fits
        from repro.obs.trace import parse_traceparent

        header = "01-" + "a" * 32 + "-" + "b" * 16 + "-01-futurefield"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed[0] == "a" * 32


class TestTraceparentProperties:
    def test_round_trip_and_malformed_fuzz(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.obs.trace import make_traceparent, parse_traceparent

        hex_char = st.sampled_from("0123456789abcdef")

        @st.composite
        def hex_id(draw, length):
            value = "".join(draw(st.lists(
                hex_char, min_size=length, max_size=length
            )))
            return value if int(value, 16) != 0 else "1" * length

        @settings(max_examples=50, deadline=None)
        @given(
            trace_id=hex_id(32),
            parent_id=hex_id(16),
            sampled=st.booleans(),
        )
        def round_trips(trace_id, parent_id, sampled):
            header = make_traceparent(
                trace_id=trace_id, parent_id=parent_id, sampled=sampled
            )
            assert parse_traceparent(header) == (trace_id, parent_id, sampled)

        @settings(max_examples=100, deadline=None)
        @given(st.text(max_size=80))
        def never_raises(junk):
            result = parse_traceparent(junk)
            if result is not None:
                trace_id, parent_id, sampled = result
                assert len(trace_id) == 32 and len(parent_id) == 16
                assert isinstance(sampled, bool)

        round_trips()
        never_raises()
