"""Tests for the region-growing baseline."""

import numpy as np
import pytest

from repro.baselines.region_growing import RegionGrowingPartitioner
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.distances import intra_metric
from repro.metrics.validation import validate_partitioning


class TestRegionGrowing:
    def test_exact_k_connected(self, small_grid_graph):
        for k in (2, 4, 6):
            labels = RegionGrowingPartitioner(k, seed=0).partition(
                small_grid_graph
            )
            validation = validate_partitioning(
                small_grid_graph.adjacency, labels
            )
            assert validation.k == k
            assert validation.is_valid

    def test_grows_along_density_step(self):
        feats = [0.0, 0.01, 0.02, 1.0, 1.01, 1.02]
        g = Graph(6, edges=[(i, i + 1) for i in range(5)], features=feats)
        labels = RegionGrowingPartitioner(2, seed=0).partition(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_beats_random_on_homogeneity(self, small_grid_graph, rng):
        labels = RegionGrowingPartitioner(4, seed=0).partition(small_grid_graph)
        feats = small_grid_graph.features
        grown = intra_metric(feats, labels)
        randoms = []
        for __ in range(5):
            rand = rng.integers(0, 4, size=small_grid_graph.n_nodes)
            __, rand = np.unique(rand, return_inverse=True)
            randoms.append(intra_metric(feats, rand))
        assert grown <= np.median(randoms)

    def test_every_node_assigned(self, small_grid_graph):
        labels = RegionGrowingPartitioner(5, seed=1).partition(small_grid_graph)
        assert (labels >= 0).all()
        assert labels.shape == (small_grid_graph.n_nodes,)

    def test_disconnected_graph_handled(self):
        g = Graph(
            6,
            edges=[(0, 1), (1, 2), (3, 4), (4, 5)],
            features=[0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        )
        labels = RegionGrowingPartitioner(2, seed=0).partition(g)
        assert (labels >= 0).all()
        assert len(set(labels.tolist())) == 2

    def test_k_one(self, small_grid_graph):
        labels = RegionGrowingPartitioner(1, seed=0).partition(small_grid_graph)
        assert labels.max() == 0

    def test_deterministic(self, small_grid_graph):
        a = RegionGrowingPartitioner(3, seed=9).partition(small_grid_graph)
        b = RegionGrowingPartitioner(3, seed=9).partition(small_grid_graph)
        np.testing.assert_array_equal(a, b)

    def test_balance_reduces_size_spread(self, small_grid_graph):
        plain = RegionGrowingPartitioner(4, balance=0.0, seed=0).partition(
            small_grid_graph
        )
        balanced = RegionGrowingPartitioner(4, balance=0.5, seed=0).partition(
            small_grid_graph
        )
        spread = lambda lab: np.bincount(lab).std()  # noqa: E731
        assert spread(balanced) <= spread(plain) + 1e-9

    def test_invalid_inputs(self, small_grid_graph):
        with pytest.raises(PartitioningError):
            RegionGrowingPartitioner(0)
        with pytest.raises(PartitioningError):
            RegionGrowingPartitioner(2, balance=2.0)
        with pytest.raises(PartitioningError):
            RegionGrowingPartitioner(999).partition(small_grid_graph)
        with pytest.raises(PartitioningError):
            RegionGrowingPartitioner(2).partition(small_grid_graph.adjacency)
