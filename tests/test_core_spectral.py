"""Tests for the spectral relaxation (Algorithm 3, lines 1-11)."""

import numpy as np
import pytest

from repro.core.spectral import (
    row_normalize,
    smallest_eigenvectors,
    spectral_embedding,
    spectral_partition,
)
from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.graph.laplacian import alpha_cut_matrix


class TestSmallestEigenvectors:
    def test_values_ascending(self, two_cliques):
        values, __ = smallest_eigenvectors(two_cliques.adjacency, 4)
        assert (np.diff(values) >= -1e-10).all()

    def test_matches_full_decomposition(self, two_cliques):
        values, vectors = smallest_eigenvectors(two_cliques.adjacency, 3)
        m = alpha_cut_matrix(two_cliques.adjacency)
        full = np.linalg.eigvalsh(m)
        np.testing.assert_allclose(values, full[:3], atol=1e-10)

    def test_vectors_satisfy_eigen_equation(self, two_cliques):
        values, vectors = smallest_eigenvectors(two_cliques.adjacency, 2)
        m = alpha_cut_matrix(two_cliques.adjacency)
        for i in range(2):
            np.testing.assert_allclose(
                m @ vectors[:, i], values[i] * vectors[:, i], atol=1e-8
            )

    def test_invalid_k(self, two_cliques):
        with pytest.raises(PartitioningError):
            smallest_eigenvectors(two_cliques.adjacency, 0)
        with pytest.raises(PartitioningError):
            smallest_eigenvectors(two_cliques.adjacency, 99)

    def test_sparse_path_agrees_with_dense(self):
        """Force the ARPACK path with a graph above the dense cutoff
        by monkeypatching the cutoff."""
        import repro.core.spectral as spec

        rng = np.random.default_rng(0)
        n = 60
        edges = [(i, (i + 1) % n) for i in range(n)]
        edges += [(i, (i + 7) % n) for i in range(n)]
        g = Graph(n, edges=edges)
        dense_vals, __ = smallest_eigenvectors(g.adjacency, 3)
        old = spec.DENSE_CUTOFF
        spec.DENSE_CUTOFF = 10
        try:
            sparse_vals, __ = smallest_eigenvectors(g.adjacency, 3)
        finally:
            spec.DENSE_CUTOFF = old
        np.testing.assert_allclose(np.sort(sparse_vals), dense_vals, atol=1e-6)


class TestRowNormalize:
    def test_unit_rows(self, rng):
        z = row_normalize(rng.normal(size=(10, 3)))
        np.testing.assert_allclose(np.linalg.norm(z, axis=1), 1.0)

    def test_zero_rows_preserved(self):
        z = row_normalize(np.array([[0.0, 0.0], [3.0, 4.0]]))
        np.testing.assert_allclose(z[0], [0.0, 0.0])
        np.testing.assert_allclose(z[1], [0.6, 0.8])


class TestSpectralPartition:
    def test_separates_cliques(self, two_cliques):
        labels = spectral_partition(two_cliques.adjacency, 2, seed=0)
        assert labels.max() == 1
        assert len(set(labels[:4].tolist())) == 1
        assert len(set(labels[4:].tolist())) == 1

    def test_k_one(self, two_cliques):
        labels = spectral_partition(two_cliques.adjacency, 1, seed=0)
        assert labels.max() == 0

    def test_k_equals_n(self, two_cliques):
        labels = spectral_partition(two_cliques.adjacency, 8, seed=0)
        assert sorted(labels.tolist()) == list(range(8))

    def test_component_extraction_splits_disconnected_clusters(self):
        """Two disconnected edges clustered together must split."""
        g = Graph(4, edges=[(0, 1), (2, 3)])
        labels = spectral_partition(g.adjacency, 2, seed=0)
        # with component extraction every partition is connected
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_labels_dense(self, two_cliques):
        labels = spectral_partition(two_cliques.adjacency, 3, seed=0)
        assert set(labels.tolist()) == set(range(labels.max() + 1))

    def test_partitions_connected(self, small_grid_graph):
        from repro.graph.components import is_connected

        labels = spectral_partition(small_grid_graph.adjacency, 4, seed=1)
        for i in range(labels.max() + 1):
            members = np.flatnonzero(labels == i)
            assert is_connected(small_grid_graph.adjacency, members)

    def test_invalid_k(self, two_cliques):
        with pytest.raises(PartitioningError):
            spectral_partition(two_cliques.adjacency, 0)

    def test_embedding_shape(self, two_cliques):
        z = spectral_embedding(two_cliques.adjacency, 3)
        assert z.shape == (8, 3)
