"""Repository quality gates.

Mechanical checks that keep the codebase at release quality: every
module, public class and public function carries a docstring, and the
package exposes a consistent version.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_public_callables_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__} has undocumented public symbols: {undocumented}"
        )


class TestVersion:
    def test_version_matches_pyproject(self):
        from pathlib import Path

        pyproject = (
            Path(repro.__file__).parent.parent.parent / "pyproject.toml"
        ).read_text(encoding="utf-8")
        assert f'version = "{repro.__version__}"' in pyproject


class TestExceptionHierarchy:
    def test_all_library_errors_catchable(self):
        from repro import exceptions

        base = exceptions.ReproError
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj is not base
                and obj.__module__ == exceptions.__name__
            ):
                assert issubclass(obj, base), name
