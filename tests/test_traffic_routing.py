"""Tests for Dijkstra routing."""

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network.generators import grid_network
from repro.network.geometry import Point
from repro.network.model import Intersection, RoadNetwork, RoadSegment
from repro.traffic.routing import Router, shortest_path


def _one_way_triangle():
    """0 -> 1 -> 2 and a slow direct 0 -> 2."""
    intersections = [
        Intersection(0, Point(0, 0)),
        Intersection(1, Point(100, 0)),
        Intersection(2, Point(200, 0)),
    ]
    segments = [
        RoadSegment(0, 0, 1, length=100.0, speed_limit=20.0),
        RoadSegment(1, 1, 2, length=100.0, speed_limit=20.0),
        RoadSegment(2, 0, 2, length=210.0, speed_limit=10.0),
    ]
    return RoadNetwork(intersections, segments)


class TestRouter:
    def test_prefers_faster_route(self):
        router = Router(_one_way_triangle(), weight="time")
        path, cost = router.shortest_path(0, 2)
        assert path == [0, 1]
        assert cost == pytest.approx(10.0)

    def test_length_weight_changes_choice(self):
        router = Router(_one_way_triangle(), weight="length")
        path, cost = router.shortest_path(0, 2)
        assert path == [0, 1]  # 200 m < 210 m
        assert cost == pytest.approx(200.0)

    def test_same_source_target(self):
        router = Router(_one_way_triangle())
        path, cost = router.shortest_path(1, 1)
        assert path == [] and cost == 0.0

    def test_unreachable_returns_none(self):
        router = Router(_one_way_triangle())
        assert router.shortest_path(2, 0) is None

    def test_out_of_range_raises(self):
        router = Router(_one_way_triangle())
        with pytest.raises(NetworkError):
            router.shortest_path(0, 99)

    def test_invalid_weight_raises(self):
        with pytest.raises(ValueError):
            Router(_one_way_triangle(), weight="hops")

    def test_path_is_contiguous(self):
        net = grid_network(5, 5, two_way=True)
        router = Router(net)
        path, __ = router.shortest_path(0, 24)
        node = 0
        for sid in path:
            seg = net.segment(sid)
            assert seg.source == node
            node = seg.target
        assert node == 24

    def test_grid_two_way_all_reachable(self):
        net = grid_network(4, 4, two_way=True)
        dist = Router(net).shortest_path_tree(0)
        assert np.isfinite(dist).all()

    def test_tree_matches_pointwise(self):
        net = grid_network(4, 4, two_way=True)
        router = Router(net)
        dist = router.shortest_path_tree(3)
        for target in (0, 7, 15):
            __, cost = router.shortest_path(3, target)
            assert dist[target] == pytest.approx(cost)

    def test_shortest_path_helper(self):
        path, cost = shortest_path(_one_way_triangle(), 0, 2)
        assert path == [0, 1]
