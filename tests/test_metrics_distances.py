"""Tests for the inter/intra metrics and the pairwise-distance helpers."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.graph.adjacency import Graph
from repro.metrics.distances import (
    adjacent_partition_pairs,
    inter_metric,
    intra_metric,
    mean_abs_cross,
    mean_abs_pairwise,
)


class TestMeanAbsPairwise:
    def test_matches_naive(self, rng):
        values = rng.random(30)
        naive = np.abs(values[:, None] - values[None, :]).sum() / (30 * 29)
        assert mean_abs_pairwise(values) == pytest.approx(naive)

    def test_two_values(self):
        assert mean_abs_pairwise([1.0, 4.0]) == pytest.approx(3.0)

    def test_degenerate(self):
        assert mean_abs_pairwise([5.0]) == 0.0
        assert mean_abs_pairwise([]) == 0.0

    def test_constant(self):
        assert mean_abs_pairwise([2.0] * 10) == pytest.approx(0.0)


class TestMeanAbsCross:
    def test_matches_naive(self, rng):
        x, y = rng.random(17), rng.random(23)
        naive = np.abs(x[:, None] - y[None, :]).mean()
        assert mean_abs_cross(x, y) == pytest.approx(naive)

    def test_symmetric(self, rng):
        x, y = rng.random(10), rng.random(12)
        assert mean_abs_cross(x, y) == pytest.approx(mean_abs_cross(y, x))

    def test_singletons(self):
        assert mean_abs_cross([1.0], [4.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(PartitioningError):
            mean_abs_cross([], [1.0])


class TestAdjacentPartitionPairs:
    def test_chain(self):
        g = Graph(6, edges=[(i, i + 1) for i in range(5)])
        labels = [0, 0, 1, 1, 2, 2]
        assert adjacent_partition_pairs(g.adjacency, labels) == [(0, 1), (1, 2)]

    def test_no_cross_edges(self):
        g = Graph(4, edges=[(0, 1), (2, 3)])
        assert adjacent_partition_pairs(g.adjacency, [0, 0, 1, 1]) == []


class TestInterMetric:
    def test_separated_densities(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        feats = [0.0, 0.0, 1.0, 1.0]
        assert inter_metric(feats, [0, 0, 1, 1], g.adjacency) == pytest.approx(1.0)

    def test_higher_for_more_distinct_partitions(self):
        g = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        weak = inter_metric([0.0, 0.0, 0.1, 0.1], [0, 0, 1, 1], g.adjacency)
        strong = inter_metric([0.0, 0.0, 5.0, 5.0], [0, 0, 1, 1], g.adjacency)
        assert strong > weak

    def test_single_partition_zero(self):
        g = Graph(3, edges=[(0, 1), (1, 2)])
        assert inter_metric([1.0, 2.0, 3.0], [0, 0, 0], g.adjacency) == 0.0

    def test_only_adjacent_pairs_counted(self):
        # three partitions in a chain; 0 and 2 not adjacent
        g = Graph(6, edges=[(i, i + 1) for i in range(5)])
        feats = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
        value = inter_metric(feats, [0, 0, 1, 1, 2, 2], g.adjacency)
        assert value == pytest.approx(1.0)  # both adjacent gaps are 1.0


class TestIntraMetric:
    def test_homogeneous_partitions_zero(self):
        feats = [1.0, 1.0, 5.0, 5.0]
        assert intra_metric(feats, [0, 0, 1, 1]) == pytest.approx(0.0)

    def test_mixed_partition_positive(self):
        feats = [0.0, 1.0, 0.0, 1.0]
        assert intra_metric(feats, [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_better_grouping_lower(self):
        feats = [0.0, 0.0, 1.0, 1.0]
        good = intra_metric(feats, [0, 0, 1, 1])
        bad = intra_metric(feats, [0, 1, 0, 1])
        assert good < bad

    def test_empty_partition_rejected(self):
        with pytest.raises(PartitioningError):
            intra_metric([1.0, 2.0], [0, 2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitioningError):
            intra_metric([1.0, 2.0], [0])
