"""Shared fixtures for the test suite."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.traffic.profiles import hotspot_profile


@pytest.fixture
def two_cliques() -> Graph:
    """Two 4-cliques joined by a single bridge edge — the canonical
    partitioning sanity graph (best 2-cut separates the cliques)."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    edges.append((3, 4))  # bridge
    features = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]
    return Graph(8, edges=edges, features=features)


@pytest.fixture
def path_graph() -> Graph:
    """A 6-node path with a density step in the middle."""
    edges = [(i, i + 1) for i in range(5)]
    features = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
    return Graph(6, edges=edges, features=features)


@pytest.fixture(scope="session")
def small_grid():
    """A 5x5 two-way grid network (80 directed segments)."""
    return grid_network(5, 5, spacing=100.0, two_way=True)


@pytest.fixture(scope="session")
def small_grid_graph(small_grid):
    """Road graph of the 5x5 grid with hotspot densities."""
    graph = build_road_graph(small_grid)
    densities = hotspot_profile(small_grid, n_hotspots=2, seed=42)
    return graph.with_features(densities)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def shm_tracker(monkeypatch):
    """Track created SharedMemory block names; fail the test on leaks.

    A leaked block outlives the interpreter (it lives in /dev/shm), so
    both the ShardContext lifecycle tests (``test_util_shm.py``) and
    the shared-memory SnapshotStore tests (``test_serve_snapshot.py``)
    run their scenarios under this fixture to prove the no-leak
    guarantee end to end.
    """
    created = []
    original = shared_memory.SharedMemory

    class TrackingSharedMemory(original):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create") or (args and args[0] is None):
                created.append(self.name)

    monkeypatch.setattr(shared_memory, "SharedMemory", TrackingSharedMemory)
    yield created
    leaked = []
    for name in created:
        try:
            block = original(name=name)
        except FileNotFoundError:
            continue  # unlinked, as it should be
        block.close()
        leaked.append(name)
    assert not leaked, f"leaked shared-memory blocks: {leaked}"
