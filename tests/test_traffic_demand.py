"""Tests for OD demand modelling."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.network.generators import grid_network
from repro.traffic.demand import (
    ODMatrix,
    gravity_model,
    trips_from_od,
    zone_centroids,
)
from repro.traffic.simulator import MicroSimulator


@pytest.fixture(scope="module")
def network():
    return grid_network(6, 6, spacing=100.0, two_way=True)


@pytest.fixture(scope="module")
def zones(network):
    """Four quadrant zones of the 6x6 grid."""
    quads = [[], [], [], []]
    for inter in network.intersections:
        r, c = divmod(inter.id, 6)
        quads[(r >= 3) * 2 + (c >= 3)].append(inter.id)
    return quads


class TestODMatrix:
    def test_valid(self, zones):
        od = ODMatrix(zones, np.ones((4, 4)) * 5)
        assert od.n_zones == 4
        assert od.total_trips() == 80.0

    def test_productions_attractions(self, zones):
        trips = np.arange(16, dtype=float).reshape(4, 4)
        od = ODMatrix(zones, trips)
        np.testing.assert_allclose(od.productions(), trips.sum(axis=1))
        np.testing.assert_allclose(od.attractions(), trips.sum(axis=0))

    def test_shape_mismatch_rejected(self, zones):
        with pytest.raises(DataError):
            ODMatrix(zones, np.ones((3, 3)))

    def test_negative_rejected(self, zones):
        trips = np.ones((4, 4))
        trips[0, 0] = -1
        with pytest.raises(DataError):
            ODMatrix(zones, trips)

    def test_empty_zone_rejected(self):
        with pytest.raises(DataError):
            ODMatrix([[0], []], np.ones((2, 2)))


class TestZoneCentroids:
    def test_centroids(self, network, zones):
        cents = zone_centroids(network, zones)
        assert cents.shape == (4, 2)
        # quadrant 0 (top-left in grid coords) centroid is left/lower
        assert cents[0, 0] < cents[1, 0]
        assert cents[0, 1] < cents[2, 1]


class TestGravityModel:
    def test_balances_margins(self, network, zones):
        prods = np.array([100.0, 50.0, 50.0, 100.0])
        attrs = np.array([75.0, 75.0, 75.0, 75.0])
        od = gravity_model(network, zones, prods, attrs)
        np.testing.assert_allclose(od.productions(), prods, rtol=1e-3)
        np.testing.assert_allclose(od.attractions(), attrs, rtol=1e-3)

    def test_distance_decay(self, network, zones):
        prods = np.full(4, 100.0)
        od = gravity_model(network, zones, prods, prods, beta=5e-3)
        # zone 0 sends more to the adjacent zone 1 than to the
        # diagonal zone 3
        assert od.trips[0, 1] > od.trips[0, 3]

    def test_zero_beta_no_decay(self, network, zones):
        prods = np.full(4, 100.0)
        od = gravity_model(network, zones, prods, prods, beta=0.0)
        # without deterrence, all destinations of equal attraction get
        # equal flows
        np.testing.assert_allclose(
            od.trips[0], od.trips[0][0], rtol=1e-6
        )

    def test_mismatched_totals_rejected(self, network, zones):
        with pytest.raises(DataError, match="must match"):
            gravity_model(
                network, zones, np.full(4, 100.0), np.full(4, 50.0)
            )

    def test_invalid_args(self, network, zones):
        with pytest.raises(DataError):
            gravity_model(network, zones, np.full(3, 1.0), np.full(4, 1.0))
        with pytest.raises(DataError):
            gravity_model(
                network, zones, np.full(4, 1.0), np.full(4, 1.0), beta=-1.0
            )
        with pytest.raises(DataError):
            gravity_model(network, zones, np.zeros(4), np.zeros(4))


class TestTripsFromOd:
    def test_realises_expected_volume(self, network, zones):
        prods = np.full(4, 50.0)
        od = gravity_model(network, zones, prods, prods)
        trips = trips_from_od(network, od, n_timestamps=50, seed=0)
        # Poisson around 200 expected, minus same-intersection drops
        assert 120 < len(trips) < 280

    def test_trips_respect_zones(self, network, zones):
        od = ODMatrix(zones, np.diag([0.0, 0.0, 0.0, 0.0]) + 0)
        trips_mat = np.zeros((4, 4))
        trips_mat[0, 3] = 30.0  # only quadrant 0 -> quadrant 3
        od = ODMatrix(zones, trips_mat)
        trips = trips_from_od(network, od, n_timestamps=50, seed=1)
        assert trips
        for trip in trips:
            origin = network.segment(trip.segments[0]).source
            dest = network.segment(trip.segments[-1]).target
            assert origin in zones[0]
            assert dest in zones[3]

    def test_feeds_simulator(self, network, zones):
        prods = np.full(4, 30.0)
        od = gravity_model(network, zones, prods, prods)
        trips = trips_from_od(network, od, n_timestamps=30, seed=0)
        sim = MicroSimulator(network, seed=0)
        result = sim.run(n_vehicles=0, n_steps=30, trips=trips)
        assert result.counts.sum() > 0

    def test_reproducible(self, network, zones):
        prods = np.full(4, 20.0)
        od = gravity_model(network, zones, prods, prods)
        a = trips_from_od(network, od, n_timestamps=20, seed=5)
        b = trips_from_od(network, od, n_timestamps=20, seed=5)
        assert [t.segments for t in a] == [t.segments for t in b]

    def test_invalid_args(self, network, zones):
        od = ODMatrix(zones, np.ones((4, 4)))
        with pytest.raises(DataError):
            trips_from_od(network, od, n_timestamps=0)
        with pytest.raises(DataError):
            trips_from_od(network, od, n_timestamps=10, depart_horizon=0.0)
