"""Tests for the normalized-cut baseline."""

import numpy as np
import pytest

from repro.baselines.ncut import NcutPartitioner, ncut_partition, ncut_value
from repro.exceptions import PartitioningError
from repro.graph.components import is_connected
from repro.supergraph.builder import build_supergraph


class TestNcutValue:
    def test_good_cut_lower(self, two_cliques):
        good = np.array([0] * 4 + [1] * 4)
        bad = np.array([0, 1] * 4)
        adj = two_cliques.adjacency
        assert ncut_value(adj, good) < ncut_value(adj, bad)

    def test_bridge_value(self, two_cliques):
        labels = np.array([0] * 4 + [1] * 4)
        # cut = 1 each side; assoc(P, V) = 13 each side
        assert ncut_value(two_cliques.adjacency, labels) == pytest.approx(2 / 13)

    def test_single_partition_zero(self, two_cliques):
        assert ncut_value(two_cliques.adjacency, np.zeros(8, dtype=int)) == 0.0

    def test_bounded_by_k(self, two_cliques, rng):
        for __ in range(5):
            labels = rng.integers(0, 3, size=8)
            __, labels = np.unique(labels, return_inverse=True)
            k = labels.max() + 1
            assert 0.0 <= ncut_value(two_cliques.adjacency, labels) <= k

    def test_shape_checked(self, two_cliques):
        with pytest.raises(PartitioningError):
            ncut_value(two_cliques.adjacency, [0, 1])


class TestNcutPartitioner:
    def test_separates_cliques(self, two_cliques):
        labels = NcutPartitioner(2, seed=0).partition(two_cliques)
        assert labels[0] == labels[3]
        assert labels[4] == labels[7]
        assert labels[0] != labels[4]

    def test_exact_k(self, small_grid_graph):
        for k in (3, 5):
            labels = NcutPartitioner(k, seed=0).partition(small_grid_graph)
            assert labels.max() + 1 == k

    def test_partitions_connected(self, small_grid_graph):
        labels = NcutPartitioner(4, seed=2).partition(small_grid_graph)
        for i in range(labels.max() + 1):
            members = np.flatnonzero(labels == i)
            assert is_connected(small_grid_graph.adjacency, members)

    def test_supergraph_expansion(self, small_grid_graph):
        sg = build_supergraph(small_grid_graph, seed=0)
        k = min(3, sg.n_supernodes)
        labels = NcutPartitioner(k, seed=0).partition(sg)
        assert labels.shape == (small_grid_graph.n_nodes,)

    def test_k_one(self, two_cliques):
        labels = NcutPartitioner(1, seed=0).partition(two_cliques)
        assert labels.max() == 0

    def test_invalid_k(self, two_cliques):
        with pytest.raises(PartitioningError):
            NcutPartitioner(0)
        with pytest.raises(PartitioningError):
            NcutPartitioner(100).partition(two_cliques)

    def test_helper(self, two_cliques):
        labels = ncut_partition(two_cliques, 2, seed=0)
        assert labels.shape == (8,)
