"""Tests for repro.graph.laplacian — matrix builders and the M/B duality."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.laplacian import (
    AlphaCutOperator,
    alpha_cut_matrix,
    degree_matrix,
    degree_vector,
    laplacian_matrix,
    modularity_matrix,
    normalized_laplacian,
)


@pytest.fixture
def weighted_adj():
    return Graph(4, edges=[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0)]).adjacency


class TestDegree:
    def test_degree_vector(self, weighted_adj):
        np.testing.assert_array_equal(
            degree_vector(weighted_adj), [2.0, 3.0, 4.0, 3.0]
        )

    def test_degree_matrix_diagonal(self, weighted_adj):
        d = degree_matrix(weighted_adj)
        np.testing.assert_array_equal(d.diagonal(), [2.0, 3.0, 4.0, 3.0])
        assert d.nnz == 4

    def test_non_square_raises(self):
        with pytest.raises(GraphError):
            degree_vector(np.zeros((2, 3)))


class TestLaplacian:
    def test_rows_sum_to_zero(self, weighted_adj):
        lap = laplacian_matrix(weighted_adj)
        np.testing.assert_allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_psd(self, weighted_adj):
        values = np.linalg.eigvalsh(laplacian_matrix(weighted_adj).toarray())
        assert values.min() >= -1e-10

    def test_constant_vector_in_kernel(self, weighted_adj):
        lap = laplacian_matrix(weighted_adj)
        np.testing.assert_allclose(lap @ np.ones(4), 0.0, atol=1e-12)


class TestNormalizedLaplacian:
    def test_eigenvalues_in_zero_two(self, weighted_adj):
        values = np.linalg.eigvalsh(normalized_laplacian(weighted_adj).toarray())
        assert values.min() >= -1e-10
        assert values.max() <= 2.0 + 1e-10

    def test_smallest_eigenvalue_zero_when_connected(self, weighted_adj):
        values = np.linalg.eigvalsh(normalized_laplacian(weighted_adj).toarray())
        assert abs(values[0]) < 1e-10

    def test_isolated_node_no_nan(self):
        adj = Graph(3, edges=[(0, 1)]).adjacency
        lap = normalized_laplacian(adj).toarray()
        assert np.isfinite(lap).all()


class TestModularityAlphaCutDuality:
    def test_m_equals_minus_b(self, weighted_adj):
        """The paper's observation: M = -B exactly."""
        m = alpha_cut_matrix(weighted_adj)
        b = modularity_matrix(weighted_adj)
        np.testing.assert_allclose(m, -b, atol=1e-12)

    def test_m_is_symmetric(self, weighted_adj):
        m = alpha_cut_matrix(weighted_adj)
        np.testing.assert_allclose(m, m.T)

    def test_m_rows_sum_to_zero(self, weighted_adj):
        # M 1 = d * sum(d)/sum(d) - A 1 = d - d = 0
        m = alpha_cut_matrix(weighted_adj)
        np.testing.assert_allclose(m @ np.ones(4), 0.0, atol=1e-12)

    def test_empty_graph_m_is_minus_a(self):
        adj = sp.csr_matrix((3, 3))
        np.testing.assert_array_equal(alpha_cut_matrix(adj), np.zeros((3, 3)))


class TestAlphaCutOperator:
    def test_matvec_matches_dense(self, weighted_adj, rng):
        op = AlphaCutOperator(weighted_adj)
        m = alpha_cut_matrix(weighted_adj)
        x = rng.normal(size=4)
        np.testing.assert_allclose(op @ x, m @ x, atol=1e-12)

    def test_matmat_matches_dense(self, weighted_adj, rng):
        op = AlphaCutOperator(weighted_adj)
        m = alpha_cut_matrix(weighted_adj)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(op @ x, m @ x, atol=1e-12)

    def test_symmetric_adjoint(self, weighted_adj):
        op = AlphaCutOperator(weighted_adj)
        assert op.H is op

    def test_eigsh_agrees_with_dense(self):
        g = Graph(
            12,
            edges=[(i, (i + 1) % 12) for i in range(12)]
            + [(i, (i + 3) % 12) for i in range(12)],
        )
        op = AlphaCutOperator(g.adjacency)
        from scipy.sparse.linalg import eigsh

        sparse_vals = np.sort(eigsh(op, k=3, which="SA")[0])
        dense_vals = np.linalg.eigvalsh(alpha_cut_matrix(g.adjacency))[:3]
        np.testing.assert_allclose(sparse_vals, dense_vals, atol=1e-8)
