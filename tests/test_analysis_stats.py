"""Tests for per-region congestion reports."""

import numpy as np
import pytest

from repro.analysis.stats import (
    JAM_DENSITY,
    CongestionLevel,
    classify_level,
    partition_report,
)
from repro.exceptions import PartitioningError
from repro.network.generators import grid_network


class TestClassifyLevel:
    def test_free_flow(self):
        assert classify_level(0.01) is CongestionLevel.FREE_FLOW

    def test_moderate(self):
        assert classify_level(0.05) is CongestionLevel.MODERATE

    def test_dense(self):
        assert classify_level(0.1) is CongestionLevel.DENSE

    def test_jammed(self):
        assert classify_level(0.15) is CongestionLevel.JAMMED

    def test_thresholds_scale_with_jam_density(self):
        assert classify_level(0.15, jam_density=1.0) is CongestionLevel.FREE_FLOW

    def test_negative_density_rejected(self):
        with pytest.raises(PartitioningError):
            classify_level(-0.1)

    def test_bad_jam_density_rejected(self):
        with pytest.raises(PartitioningError):
            classify_level(0.1, jam_density=0.0)


class TestPartitionReport:
    @pytest.fixture(scope="class")
    def network(self):
        return grid_network(4, 4, spacing=100.0, two_way=True)

    def test_report_fields(self, network):
        rng = np.random.default_rng(0)
        densities = rng.random(network.n_segments) * 0.1
        labels = np.zeros(network.n_segments, dtype=int)
        labels[network.n_segments // 2 :] = 1
        reports = partition_report(network, labels, densities)
        assert len(reports) == 2
        for report in reports:
            assert report.n_segments > 0
            assert report.total_length_km > 0
            assert 0 <= report.mean_density <= 0.1
            assert report.max_density >= report.mean_density
            assert isinstance(report.level, CongestionLevel)

    def test_sizes_sum_to_network(self, network):
        labels = np.arange(network.n_segments) % 3
        densities = np.full(network.n_segments, 0.01)
        reports = partition_report(network, labels, densities)
        assert sum(r.n_segments for r in reports) == network.n_segments

    def test_lengths_sum_to_network(self, network):
        labels = np.arange(network.n_segments) % 2
        densities = np.zeros(network.n_segments)
        reports = partition_report(network, labels, densities)
        total = sum(r.total_length_km for r in reports)
        assert total == pytest.approx(network.total_length() / 1000.0)

    def test_uses_stored_densities_by_default(self, network):
        network.set_densities(np.full(network.n_segments, 0.14))
        labels = np.zeros(network.n_segments, dtype=int)
        reports = partition_report(network, labels)
        assert reports[0].level is CongestionLevel.JAMMED

    def test_str_representation(self, network):
        labels = np.zeros(network.n_segments, dtype=int)
        densities = np.full(network.n_segments, 0.01)
        text = str(partition_report(network, labels, densities)[0])
        assert "region 0" in text and "free_flow" in text

    def test_empty_partition_rejected(self, network):
        labels = np.zeros(network.n_segments, dtype=int)
        labels[0] = 2  # id 1 missing
        with pytest.raises(PartitioningError):
            partition_report(network, labels, np.zeros(network.n_segments))

    def test_shape_mismatch_rejected(self, network):
        with pytest.raises(PartitioningError):
            partition_report(network, [0, 1], None)
