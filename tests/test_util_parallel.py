"""map_parallel: worker/mode resolution, ordering, determinism, metrics."""

import os

import numpy as np
import pytest

from repro.clustering.optimality import scan_kappa
from repro.exceptions import ReproError
from repro.obs.metrics import MetricsRegistry, incr, observe, use_registry
from repro.util.parallel import (
    PARALLEL_MODE_ENV_VAR,
    PARALLEL_MODES,
    WORKERS_ENV_VAR,
    map_parallel,
    resolve_parallel_mode,
    resolve_workers,
)


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
        assert resolve_workers(None) == 1

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_zero_env_means_cpu_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [-1, -2, "three"])
    def test_invalid_counts_rejected(self, bad, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            resolve_workers(bad)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ReproError):
            resolve_workers(None)


class TestResolveParallelMode:
    def test_thread_default(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_MODE_ENV_VAR, raising=False)
        assert resolve_parallel_mode(None) == "thread"

    @pytest.mark.parametrize("mode", PARALLEL_MODES)
    def test_explicit_modes(self, mode):
        assert resolve_parallel_mode(mode) == mode

    def test_case_insensitive(self):
        assert resolve_parallel_mode("Process") == "process"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV_VAR, "process")
        assert resolve_parallel_mode(None) == "process"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV_VAR, "process")
        assert resolve_parallel_mode("serial") == "serial"

    def test_empty_env_is_thread(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV_VAR, "  ")
        assert resolve_parallel_mode(None) == "thread"

    @pytest.mark.parametrize("bad", ["fiber", "greenlet", ""])
    def test_invalid_modes_rejected(self, bad):
        with pytest.raises(ReproError):
            resolve_parallel_mode(bad)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV_VAR, "fiber")
        with pytest.raises(ReproError):
            resolve_parallel_mode(None)


class TestMapParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_map_in_order(self, workers):
        items = list(range(23))
        assert map_parallel(lambda x: x * x, items, workers=workers) == [
            x * x for x in items
        ]

    def test_empty_items(self):
        assert map_parallel(lambda x: x, [], workers=4) == []

    def test_generator_items(self):
        assert map_parallel(lambda x: -x, (i for i in range(5)), workers=2) == [
            0,
            -1,
            -2,
            -3,
            -4,
        ]

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("item 3 failed")
            return x

        with pytest.raises(ValueError, match="item 3 failed"):
            map_parallel(boom, range(6), workers=4)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            map_parallel(lambda x: x, [1, 2], workers=2, mode="fiber")

    def test_serial_mode_ignores_worker_count(self):
        assert map_parallel(lambda x: x + 1, range(6), workers=8, mode="serial") == [
            x + 1 for x in range(6)
        ]

    def test_process_mode(self):
        assert map_parallel(abs, [-2, -1, 0, 1], workers=2, mode="process") == [
            2,
            1,
            0,
            1,
        ]

    def test_env_var_drives_mode(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MODE_ENV_VAR, "serial")
        assert map_parallel(abs, [-3, 4], workers=4) == [3, 4]


def _record_and_square(x):
    incr("work.items")
    incr("work.total", x)
    observe("work.value", x)
    return x * x


class TestProcessMetricsMergeBack:
    """Process workers must not drop metrics (the observability hole)."""

    @pytest.mark.parametrize("mode", PARALLEL_MODES)
    def test_worker_metrics_reach_caller(self, mode):
        registry = MetricsRegistry()
        with use_registry(registry):
            out = map_parallel(_record_and_square, range(6), workers=2, mode=mode)
        assert out == [x * x for x in range(6)]
        assert registry.counter("work.items") == 6
        assert registry.counter("work.total") == sum(range(6))
        hist = registry.histogram("work.value")
        assert hist is not None
        assert hist.count == 6
        assert hist.total == sum(range(6))
        assert hist.min == 0 and hist.max == 5

    def test_pool_bookkeeping_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            map_parallel(_record_and_square, range(5), workers=2, mode="process")
        assert registry.counter("parallel.maps") == 1
        assert registry.counter("parallel.items") == 5
        assert registry.gauge("parallel.workers") == 2
        assert registry.histogram("parallel.item_seconds").count == 5
        utilization = registry.gauge("parallel.utilization")
        assert utilization is not None and 0.0 <= utilization <= 1.0

    def test_no_registry_is_fine(self):
        assert map_parallel(_record_and_square, range(4), workers=2, mode="process") == [
            0,
            1,
            4,
            9,
        ]


class TestKappaScanDeterminism:
    def test_workers_do_not_change_the_scan(self):
        """workers=1 and workers=4 must give identical kappa-scan output."""
        rng = np.random.default_rng(11)
        values = rng.gamma(2.0, 0.02, size=240)

        serial = scan_kappa(values, kappa_max=12, workers=1)
        parallel = scan_kappa(values, kappa_max=12, workers=4)

        assert serial.kappas == parallel.kappas
        assert serial.mcg == parallel.mcg
        assert serial.best_kappa == parallel.best_kappa
        for a, b in zip(serial.results, parallel.results):
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.centers, b.centers)
            assert a.inertia == b.inertia

    def test_mode_does_not_change_the_scan(self):
        """Thread and process execution must give identical scans."""
        rng = np.random.default_rng(7)
        values = rng.gamma(2.0, 0.02, size=180)

        threaded = scan_kappa(values, kappa_max=10, workers=2, parallel_mode="thread")
        processed = scan_kappa(values, kappa_max=10, workers=2, parallel_mode="process")

        assert threaded.kappas == processed.kappas
        assert threaded.mcg == processed.mcg
        for a, b in zip(threaded.results, processed.results):
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.centers, b.centers)

    def test_env_var_drives_scan_workers(self, monkeypatch):
        rng = np.random.default_rng(3)
        values = rng.gamma(2.0, 0.02, size=120)
        baseline = scan_kappa(values, kappa_max=8)
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        via_env = scan_kappa(values, kappa_max=8)
        assert baseline.mcg == via_env.mcg
