"""map_parallel: worker resolution, ordering, determinism."""

import numpy as np
import pytest

from repro.clustering.optimality import scan_kappa
from repro.exceptions import ReproError
from repro.util.parallel import WORKERS_ENV_VAR, map_parallel, resolve_workers


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("bad", [0, -2, "three"])
    def test_invalid_counts_rejected(self, bad, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            resolve_workers(bad)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ReproError):
            resolve_workers(None)


class TestMapParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_map_in_order(self, workers):
        items = list(range(23))
        assert map_parallel(lambda x: x * x, items, workers=workers) == [
            x * x for x in items
        ]

    def test_empty_items(self):
        assert map_parallel(lambda x: x, [], workers=4) == []

    def test_generator_items(self):
        assert map_parallel(lambda x: -x, (i for i in range(5)), workers=2) == [
            0,
            -1,
            -2,
            -3,
            -4,
        ]

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("item 3 failed")
            return x

        with pytest.raises(ValueError, match="item 3 failed"):
            map_parallel(boom, range(6), workers=4)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            map_parallel(lambda x: x, [1, 2], workers=2, mode="fiber")

    def test_process_mode(self):
        assert map_parallel(abs, [-2, -1, 0, 1], workers=2, mode="process") == [
            2,
            1,
            0,
            1,
        ]


class TestKappaScanDeterminism:
    def test_workers_do_not_change_the_scan(self):
        """workers=1 and workers=4 must give identical kappa-scan output."""
        rng = np.random.default_rng(11)
        values = rng.gamma(2.0, 0.02, size=240)

        serial = scan_kappa(values, kappa_max=12, workers=1)
        parallel = scan_kappa(values, kappa_max=12, workers=4)

        assert serial.kappas == parallel.kappas
        assert serial.mcg == parallel.mcg
        assert serial.best_kappa == parallel.best_kappa
        for a, b in zip(serial.results, parallel.results):
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.centers, b.centers)
            assert a.inertia == b.inertia

    def test_env_var_drives_scan_workers(self, monkeypatch):
        rng = np.random.default_rng(3)
        values = rng.gamma(2.0, 0.02, size=120)
        baseline = scan_kappa(values, kappa_max=8)
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        via_env = scan_kappa(values, kappa_max=8)
        assert baseline.mcg == via_env.mcg
