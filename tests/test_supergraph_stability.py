"""Tests for supernode stability (Eq. 2) and Algorithm 2."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.supergraph.stability import (
    stability,
    stability_check,
    supernode_stability,
)
from repro.supergraph.supernode import Supernode, membership_vector


class TestStabilityMeasure:
    def test_uniform_features_give_one(self):
        assert stability([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_single_node_is_one(self):
        assert stability([3.0]) == pytest.approx(1.0)

    def test_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            feats = rng.random(rng.integers(1, 30)) * 10
            assert 0.0 <= stability(feats) <= 1.0

    def test_more_spread_less_stable(self):
        tight = stability([1.0, 1.01, 0.99])
        loose = stability([1.0, 2.0, 0.1])
        assert tight > loose

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            stability([])

    def test_supernode_wrapper(self):
        sn = Supernode(0, [0, 2], 0.0)
        feats = [1.0, 99.0, 1.0]
        assert supernode_stability(sn, feats) == pytest.approx(1.0)


def _chain_graph(features):
    n = len(features)
    return Graph(n, edges=[(i, i + 1) for i in range(n - 1)], features=features)


class TestStabilityCheck:
    def test_threshold_zero_is_noop(self):
        feats = [0.0, 10.0, 0.0]
        g = _chain_graph(feats)
        sns = [Supernode(0, [0, 1, 2], 3.33)]
        out = stability_check(sns, feats, 0.0, adjacency=g.adjacency)
        assert out == sns

    def test_stable_supernode_kept_with_feature(self):
        feats = [1.0, 1.0, 1.0]
        g = _chain_graph(feats)
        sns = [Supernode(0, [0, 1, 2], 42.0)]
        out = stability_check(sns, feats, 0.99, adjacency=g.adjacency)
        assert len(out) == 1
        assert out[0].feature == 42.0  # retained, not recomputed

    def test_unstable_supernode_split(self):
        feats = [0.0, 0.0, 10.0, 10.0]
        g = _chain_graph(feats)
        sns = [Supernode(0, np.arange(4), 5.0)]
        out = stability_check(sns, feats, 0.9, adjacency=g.adjacency)
        assert len(out) == 2
        features = sorted(sn.feature for sn in out)
        assert features == [0.0, 10.0]  # member means after split

    def test_split_halves_reconnected(self):
        """Splitting by value can disconnect members; reconnect=True
        separates the pieces."""
        feats = [0.0, 10.0, 0.0]  # low nodes 0, 2 are not adjacent
        g = _chain_graph(feats)
        sns = [Supernode(0, np.arange(3), 3.33)]
        out = stability_check(sns, feats, 0.9, adjacency=g.adjacency)
        assert len(out) == 3

    def test_no_reconnect_keeps_value_halves(self):
        feats = [0.0, 10.0, 0.0]
        sns = [Supernode(0, np.arange(3), 3.33)]
        out = stability_check(sns, feats, 0.9, reconnect=False)
        assert len(out) == 2

    def test_result_is_partition(self):
        rng = np.random.default_rng(1)
        feats = rng.random(20)
        g = _chain_graph(list(feats))
        sns = [Supernode(0, np.arange(10), 0.5), Supernode(1, np.arange(10, 20), 0.5)]
        out = stability_check(sns, feats, 0.95, adjacency=g.adjacency)
        membership_vector(out, 20)  # raises on overlap/uncovered

    def test_threshold_one_forces_constant_groups(self):
        feats = [0.0, 0.0, 1.0, 1.0, 1.0]
        g = _chain_graph(feats)
        sns = [Supernode(0, np.arange(5), 0.6)]
        out = stability_check(sns, feats, 1.0, adjacency=g.adjacency)
        for sn in out:
            members = np.asarray(feats)[sn.members]
            assert members.min() == members.max()

    def test_reconnect_requires_adjacency(self):
        sns = [Supernode(0, [0, 1], 0.5)]
        with pytest.raises(GraphError, match="adjacency"):
            stability_check(sns, [0.0, 1.0], 0.9)

    def test_invalid_threshold(self):
        sns = [Supernode(0, [0], 0.5)]
        with pytest.raises(GraphError):
            stability_check(sns, [0.0], 1.5, reconnect=False)

    def test_monotone_supernode_count_in_threshold(self):
        rng = np.random.default_rng(2)
        feats = rng.random(30)
        g = _chain_graph(list(feats))
        sns = [Supernode(0, np.arange(30), float(feats.mean()))]
        counts = [
            len(
                stability_check(sns, feats, eta, adjacency=g.adjacency)
            )
            for eta in (0.0, 0.7, 0.9, 0.99)
        ]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
