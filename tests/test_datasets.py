"""Tests for the dataset builders and registry."""

import numpy as np
import pytest

from repro.datasets.large import melbourne_like
from repro.datasets.registry import dataset_names, load_dataset
from repro.datasets.small import small_network, small_network_series
from repro.exceptions import DataError


class TestSmallNetwork:
    def test_size_near_d1(self):
        network, densities = small_network(seed=0)
        assert 400 <= network.n_segments <= 470  # D1 has 420
        assert densities.shape == (network.n_segments,)

    def test_congestion_present(self):
        __, densities = small_network(seed=0)
        assert densities.max() > 0.01
        assert (densities > 0).mean() > 0.2

    def test_reproducible(self):
        __, a = small_network(seed=4)
        __, b = small_network(seed=4)
        np.testing.assert_allclose(a, b)

    def test_snapshot_selection(self):
        net, series = small_network_series(seed=0, n_steps=80)
        assert series.shape == (80, net.n_segments)
        __, snap = small_network(seed=0, n_steps=80, snapshot_t=40)
        np.testing.assert_allclose(snap, series[40])

    def test_invalid_snapshot(self):
        with pytest.raises(ValueError):
            small_network(snapshot_t=500)


class TestMelbourneLike:
    def test_scaled_down_size(self):
        network, densities = melbourne_like("M1", size_factor=0.2, seed=0)
        assert network.n_segments < 2000
        assert densities.shape == (network.n_segments,)

    def test_presets_scale_up(self):
        m1, __ = melbourne_like("M1", size_factor=0.15, seed=0)
        m2, __ = melbourne_like("M2", size_factor=0.15, seed=0)
        assert m2.n_segments > m1.n_segments

    def test_mntg_traffic_path(self):
        network, densities = melbourne_like(
            "M1", size_factor=0.1, traffic="mntg", seed=0
        )
        assert densities.sum() > 0

    def test_unknown_preset(self):
        with pytest.raises(DataError):
            melbourne_like("M9")

    def test_invalid_params(self):
        with pytest.raises(DataError):
            melbourne_like("M1", size_factor=0.0)
        with pytest.raises(DataError):
            melbourne_like("M1", traffic="teleport")
        with pytest.raises(DataError):
            melbourne_like("M1", size_factor=0.1, traffic="mntg", snapshot_t=500)


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        assert {"D1", "M1", "M2", "M3", "M1-small"} <= set(names)

    def test_load_small_variant(self):
        network, densities = load_dataset("M2-small", seed=0)
        assert network.n_segments > 1000
        assert densities.shape == (network.n_segments,)

    def test_unknown_name(self):
        with pytest.raises(DataError, match="unknown dataset"):
            load_dataset("D9")

    def test_load_d1(self):
        network, __ = load_dataset("D1")
        assert network.n_segments > 400
