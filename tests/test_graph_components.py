"""Tests for repro.graph.components."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.components import (
    connected_components,
    constrained_components,
    count_constrained_components,
    is_connected,
)


def _adj(n, edges):
    return Graph(n, edges=edges).adjacency


class TestConnectedComponents:
    def test_single_component(self):
        comp = connected_components(_adj(3, [(0, 1), (1, 2)]))
        assert comp.max() == 0

    def test_two_components(self):
        comp = connected_components(_adj(4, [(0, 1), (2, 3)]))
        assert comp.max() == 1
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_isolated_nodes(self):
        comp = connected_components(_adj(3, []))
        assert sorted(comp.tolist()) == [0, 1, 2]

    def test_empty_graph(self):
        comp = connected_components(sp.csr_matrix((0, 0)))
        assert comp.size == 0

    def test_ids_in_discovery_order(self):
        comp = connected_components(_adj(4, [(0, 1), (2, 3)]))
        assert comp[0] == 0 and comp[2] == 1

    def test_non_square_raises(self):
        with pytest.raises(GraphError):
            connected_components(np.zeros((2, 3)))


class TestConstrainedComponents:
    def test_labels_split_components(self):
        # path 0-1-2-3 with labels [0, 0, 1, 1] -> two components
        comp = constrained_components(_adj(4, [(0, 1), (1, 2), (2, 3)]), [0, 0, 1, 1])
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_same_label_disconnected_stays_separate(self):
        # nodes 0 and 3 share a label but are not adjacent within it
        comp = constrained_components(
            _adj(4, [(0, 1), (1, 2), (2, 3)]), [0, 1, 1, 0]
        )
        assert comp[0] != comp[3]

    def test_uniform_labels_equals_plain_components(self):
        adj = _adj(5, [(0, 1), (1, 2), (3, 4)])
        plain = connected_components(adj)
        constrained = constrained_components(adj, np.zeros(5, dtype=int))
        np.testing.assert_array_equal(plain, constrained)

    def test_labels_none_raises(self):
        with pytest.raises(GraphError):
            constrained_components(_adj(2, [(0, 1)]), None)

    def test_wrong_label_shape_raises(self):
        with pytest.raises(GraphError, match="shape"):
            constrained_components(_adj(3, [(0, 1)]), [0, 1])


class TestCountConstrainedComponents:
    def test_count(self):
        adj = _adj(4, [(0, 1), (1, 2), (2, 3)])
        assert count_constrained_components(adj, [0, 0, 1, 1]) == 2
        assert count_constrained_components(adj, [0, 1, 0, 1]) == 4

    def test_fewer_labels_fewer_components(self):
        # the supernode-selection rule: coarser clusterings that align
        # with adjacency yield fewer components
        adj = _adj(6, [(i, i + 1) for i in range(5)])
        coarse = count_constrained_components(adj, [0, 0, 0, 1, 1, 1])
        fine = count_constrained_components(adj, [0, 1, 0, 1, 0, 1])
        assert coarse < fine


class TestIsConnected:
    def test_connected(self):
        assert is_connected(_adj(3, [(0, 1), (1, 2)]))

    def test_disconnected(self):
        assert not is_connected(_adj(3, [(0, 1)]))

    def test_subset(self):
        adj = _adj(4, [(0, 1), (1, 2), (2, 3)])
        assert is_connected(adj, [0, 1])
        assert not is_connected(adj, [0, 2])

    def test_trivial_cases(self):
        adj = _adj(3, [(0, 1)])
        assert is_connected(adj, [])
        assert is_connected(adj, [2])
