"""Tests for supernode creation."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.supergraph.supernode import (
    Supernode,
    create_supernodes,
    membership_vector,
)


def _path_adj(n):
    return Graph(n, edges=[(i, i + 1) for i in range(n - 1)]).adjacency


class TestSupernode:
    def test_size(self):
        sn = Supernode(0, [1, 2, 3], 0.5)
        assert sn.size == 3

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            Supernode(0, [], 0.0)

    def test_member_mean(self):
        sn = Supernode(0, [0, 2], 0.0)
        assert sn.member_mean([1.0, 9.0, 3.0]) == pytest.approx(2.0)


class TestCreateSupernodes:
    def test_aligned_clusters_one_supernode_each(self):
        adj = _path_adj(6)
        labels = [0, 0, 0, 1, 1, 1]
        sns = create_supernodes(adj, labels, cluster_means=[0.1, 0.9])
        assert len(sns) == 2
        assert sns[0].feature == 0.1
        assert sns[1].feature == 0.9

    def test_disconnected_cluster_splits(self):
        adj = _path_adj(5)
        labels = [0, 1, 0, 1, 0]  # cluster 0 is three isolated nodes
        sns = create_supernodes(adj, labels, cluster_means=[0.1, 0.9])
        assert len(sns) == 5

    def test_cluster_mean_assigned_by_label(self):
        adj = _path_adj(4)
        labels = [0, 0, 1, 1]
        sns = create_supernodes(adj, labels, cluster_means=[0.25, 0.75])
        features = sorted(sn.feature for sn in sns)
        assert features == [0.25, 0.75]

    def test_member_mean_fallback(self):
        adj = _path_adj(4)
        labels = [0, 0, 1, 1]
        sns = create_supernodes(adj, labels, features=[1.0, 3.0, 5.0, 7.0])
        features = sorted(sn.feature for sn in sns)
        assert features == [2.0, 6.0]

    def test_cover_is_partition(self):
        adj = _path_adj(7)
        labels = [0, 1, 1, 0, 2, 2, 2]
        sns = create_supernodes(adj, labels, cluster_means=[0.1, 0.5, 0.9])
        member_of = membership_vector(sns, 7)
        assert (member_of >= 0).all()

    def test_requires_means_or_features(self):
        with pytest.raises(GraphError):
            create_supernodes(_path_adj(3), [0, 0, 0])

    def test_cluster_index_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            create_supernodes(_path_adj(3), [0, 0, 5], cluster_means=[0.1])


class TestMembershipVector:
    def test_basic(self):
        sns = [Supernode(0, [0, 1], 0.1), Supernode(1, [2], 0.9)]
        np.testing.assert_array_equal(membership_vector(sns, 3), [0, 0, 1])

    def test_overlap_rejected(self):
        sns = [Supernode(0, [0, 1], 0.1), Supernode(1, [1, 2], 0.9)]
        with pytest.raises(GraphError, match="overlap"):
            membership_vector(sns, 3)

    def test_uncovered_rejected(self):
        sns = [Supernode(0, [0], 0.1)]
        with pytest.raises(GraphError, match="not covered"):
            membership_vector(sns, 2)
