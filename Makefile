# Convenience targets for the repro library.

.PHONY: install test bench bench-full bench-hotpaths examples docs-check all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_FULL_SCALE=1 pytest benchmarks/ --benchmark-only -s

bench-hotpaths:
	pytest benchmarks/test_bench_hotpaths.py -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: test bench
