# Convenience targets for the repro library.

.PHONY: install test bench bench-full bench-hotpaths bench-obs bench-scaling bench-scaling-full bench-serving bench-compare serve-demo slo-demo obs-report trace-demo analyze-demo profile-demo profile-demo-process examples docs-check all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_FULL_SCALE=1 pytest benchmarks/ --benchmark-only -s

bench-hotpaths:
	pytest benchmarks/test_bench_hotpaths.py -s

bench-obs:
	pytest benchmarks/test_bench_obs_overhead.py -s

# Multiprocess scaling curve (1/2/4/8 workers, shared-memory shards);
# the full-scale variant runs the ~1M-segment metropolis.
bench-scaling:
	pytest benchmarks/test_bench_scaling.py -s

bench-scaling-full:
	REPRO_FULL_SCALE=1 pytest benchmarks/test_bench_scaling.py -s

# Serving throughput/latency bench on the full-scale M2 network
# (writes BENCH_serving.json; the >=10k lookups/s + p99<10ms floors).
bench-serving:
	pytest benchmarks/test_bench_serving.py -s

# Gate the newest benchmark runs against benchmarks/results/history.jsonl
# (exit 1 on regression, 2 when the history is still too short).
bench-compare:
	python -m repro bench compare

# Boot the partition server on D1, fire a bounded loadgen burst at it,
# print the report, and shut the server down cleanly (SIGTERM).
serve-demo:
	@python -m repro serve D1 -k 4 --port 0 > serve-status.json & \
	SERVER_PID=$$!; \
	for i in $$(seq 1 50); do [ -s serve-status.json ] && break; sleep 0.2; done; \
	PORT=$$(python -c "import json; print(json.load(open('serve-status.json'))['port'])"); \
	echo "server on port $$PORT (serve-status.json)"; \
	python -m repro loadgen --port $$PORT --duration 2 --connections 2 --depth 16; \
	status=$$?; \
	kill -TERM $$SERVER_PID; wait $$SERVER_PID; \
	exit $$status

# SLO burn demo: a deliberately slow server (50 ms injected against a
# 10 ms latency objective) burns its error budget under load, and
# `repro obs slo` exits 1 — the scriptable gate CI uses.
slo-demo:
	@python -m repro serve D1 -k 4 --port 0 --slo-latency-ms 10 \
		--inject-slow-ms 50 --record-live > slo-status.json & \
	SERVER_PID=$$!; \
	for i in $$(seq 1 50); do [ -s slo-status.json ] && break; sleep 0.2; done; \
	PORT=$$(python -c "import json; print(json.load(open('slo-status.json'))['port'])"); \
	echo "server on port $$PORT (slo-status.json)"; \
	python -m repro loadgen --port $$PORT --duration 2 --connections 2 --depth 4; \
	python -m repro obs slo --port $$PORT; \
	slo_status=$$?; \
	kill -TERM $$SERVER_PID; wait $$SERVER_PID; \
	echo "obs slo exit code: $$slo_status (1 = burning, as intended)"; \
	[ $$slo_status -eq 1 ]

# Flight-recorder report from the trace-demo artifacts.
obs-report: trace-demo
	python -m repro obs report trace.json metrics.json -o report.html
	@echo "wrote report.html"

# Trace analytics on the trace-demo artifact: critical path and
# ranked optimization targets, then the scaling-law fits + 100k-segment
# forecast from the committed benchmark history.
analyze-demo: trace-demo
	python -m repro obs analyze trace.json
	python -m repro obs scaling

# Observed demo run: trace.json opens in https://ui.perfetto.dev,
# metrics.json holds the counters + run manifest.
trace-demo:
	python -m repro --log-level info partition D1 -k 6 --json \
		--trace-out trace.json --metrics-out metrics.json > result.json
	@echo "wrote result.json, trace.json, metrics.json"

# Profiled demo run: the full artifact set in profdir/ — open
# profile.speedscope.json at https://www.speedscope.app, or just
# report.html for the inline flame graph.
profile-demo:
	python -m repro obs profile D1 -k 6 --memory --out-dir profdir
	@echo "open profdir/report.html (or load profdir/profile.speedscope.json at speedscope.app)"

profile-demo-process:
	python -m repro obs profile D1 -k 6 --parallel-mode process --workers 2 --shards 4 --out-dir profdir-process
	@echo "open profdir-process/report.html — one flame graph spanning the parent and both workers"

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

all: test bench
