"""Scheme comparison: alpha-Cut vs normalized cut vs Ji & Geroliminis.

Reproduces the spirit of the paper's Table 2 interactively: runs every
scheme on the same network over a k-range, reports each scheme's best
(lowest) ANS with the k attaining it, and prints the full ANS curves
so the trade-offs are visible.

Run:  python examples/scheme_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import small_network
from repro.network.dual import build_road_graph
from repro.pipeline.schemes import SCHEMES, run_scheme

K_RANGE = range(2, 13)
N_RUNS = 3
SEED = 7


def main() -> None:
    network, densities = small_network(seed=SEED)
    graph = build_road_graph(network).with_features(densities)
    print(f"comparing {len(SCHEMES)} schemes on {network.n_segments} "
          f"segments, k = {K_RANGE.start}..{K_RANGE.stop - 1}, "
          f"median of {N_RUNS} runs\n")

    curves = {}
    for scheme in SCHEMES:
        curve = []
        for k in K_RANGE:
            values = [
                run_scheme(scheme, graph, k, seed=seed).evaluate(graph)["ans"]
                for seed in range(N_RUNS)
            ]
            curve.append(float(np.median(values)))
        curves[scheme] = curve

    header = "   k " + "".join(f"{s:>8}" for s in SCHEMES)
    print(header)
    for i, k in enumerate(K_RANGE):
        row = f"{k:>4} " + "".join(f"{curves[s][i]:>8.3f}" for s in SCHEMES)
        print(row)

    print("\nbest (lowest) ANS per scheme:")
    for scheme in SCHEMES:
        curve = curves[scheme]
        best = int(np.argmin(curve))
        print(f"  {scheme:<4} ans={curve[best]:.4f} at k={list(K_RANGE)[best]}")

    print("\npaper (Table 2, real Downtown San Francisco data): "
          "AG 0.3392 @6, ASG 0.3526 @6, NG 0.9362 @8, Ji&Ger. 0.6210 @3 — "
          "the alpha-Cut schemes win, as they should here.")


if __name__ == "__main__":
    main()
