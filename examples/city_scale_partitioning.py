"""City-scale partitioning: the scalability path end to end.

Walks the paper's large-network pipeline on a Melbourne-like synthetic
metropolis (a scaled M1 analogue by default — pass ``--full`` for the
paper-scale 17k-segment network):

1. generate the network and MNTG-style traffic,
2. mine the road supergraph and report the order reduction,
3. partition with alpha-Cut at the ANS-optimal k from a scan,
4. print per-region statistics.

Run:  python examples/city_scale_partitioning.py [--full]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import melbourne_like
from repro.network.dual import build_road_graph
from repro.pipeline.schemes import run_scheme
from repro.supergraph.builder import SupergraphBuilder

K_SCAN = range(3, 11)
SEED = 3


def main() -> None:
    size_factor = 1.0 if "--full" in sys.argv else 0.3
    t0 = time.perf_counter()
    network, densities = melbourne_like("M1", size_factor=size_factor, seed=SEED)
    print(f"generated M1 analogue x{size_factor}: {network.n_segments} "
          f"segments, {network.n_intersections} intersections "
          f"({time.perf_counter() - t0:.1f}s)")

    t0 = time.perf_counter()
    graph = build_road_graph(network).with_features(densities)
    print(f"road graph: {graph.n_nodes} nodes, {graph.n_edges} adjacency "
          f"links ({time.perf_counter() - t0:.1f}s)")

    t0 = time.perf_counter()
    builder = SupergraphBuilder(seed=SEED)
    supergraph = builder.build(graph)
    report = builder.report
    print(f"supergraph: {supergraph.n_supernodes} supernodes "
          f"(kappa={report.chosen_kappa}, "
          f"{graph.n_nodes / supergraph.n_supernodes:.1f}x order reduction, "
          f"{time.perf_counter() - t0:.1f}s)")

    # scan k for the ANS optimum, as the paper does
    print(f"\nscanning k = {K_SCAN.start}..{K_SCAN.stop - 1}:")
    best_k, best_ans, best_result = None, None, None
    for k in K_SCAN:
        result = run_scheme("ASG", graph, k, seed=SEED)
        ans = result.evaluate(graph)["ans"]
        marker = ""
        if best_ans is None or ans < best_ans:
            best_k, best_ans, best_result = k, ans, result
            marker = "  <- best so far"
        print(f"  k={k:<3} ans={ans:.4f}{marker}")

    print(f"\noptimal partitioning: k={best_k} (ans={best_ans:.4f})")
    feats = np.asarray(graph.features)
    for i in range(best_result.k):
        members = np.flatnonzero(best_result.labels == i)
        print(f"  region {i}: {members.size:5d} segments, "
              f"mean density {feats[members].mean():.4f} veh/m")


if __name__ == "__main__":
    main()
