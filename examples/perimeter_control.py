"""Perimeter control: protecting the congested core with gating.

The end-to-end traffic-management application the paper motivates:

1. simulate an uncontrolled rush hour and partition the network by
   its mean congestion;
2. identify the busiest region and extract its MFD (flow vs
   accumulation);
3. re-run the same demand with a perimeter controller gating that
   region at 60% of its uncontrolled peak accumulation;
4. compare peaks, MFD tightness and trip throughput.

Run:  python examples/perimeter_control.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mfd import region_mfd
from repro.control.perimeter import PerimeterController
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.pipeline.schemes import run_scheme
from repro.traffic.simulator import MicroSimulator

K = 4
SEED = 0
N_VEHICLES = 800
N_STEPS = 70


def main() -> None:
    network = grid_network(8, 8, spacing=100.0, two_way=True)
    graph = build_road_graph(network)

    # 1. uncontrolled run + congestion partitioning
    free = MicroSimulator(network, seed=SEED).run(
        n_vehicles=N_VEHICLES, n_steps=N_STEPS, centre_bias=4.0
    )
    mean_density = free.densities.mean(axis=0)
    labels = run_scheme(
        "ASG", graph.with_features(mean_density), K, seed=SEED
    ).labels

    # 2. the busiest region and its MFD
    peaks = np.array(
        [free.counts[:, labels == r].sum(axis=1).max() for r in range(K)]
    )
    busiest = int(np.argmax(peaks))
    mfd_free = region_mfd(free, labels, busiest)
    print(f"regions: {np.bincount(labels).tolist()} segments each")
    print(f"busiest region: {busiest} "
          f"(peak accumulation {peaks[busiest]:.0f} vehicles, "
          f"MFD tightness {mfd_free.tightness():.3f})")

    # 3. gated re-run
    setpoint = 0.6 * peaks[busiest]
    controller = PerimeterController(
        graph.adjacency,
        labels,
        upper=setpoint,
        protected=[busiest],
        max_inflow_per_step=2,
    )
    gated = MicroSimulator(network, seed=SEED).run(
        n_vehicles=N_VEHICLES, n_steps=N_STEPS, centre_bias=4.0,
        gate=controller,
    )
    gated_peak = gated.counts[:, labels == busiest].sum(axis=1).max()
    closed_steps = sum(1 for closed in controller.gate_history if closed)

    # 4. report
    print(f"\nperimeter control at setpoint {setpoint:.0f} vehicles:")
    print(f"  peak accumulation : {peaks[busiest]:.0f} -> {gated_peak:.0f}")
    print(f"  gate closed       : {closed_steps}/{N_STEPS} steps")
    print(f"  trips completed   : {free.completed_trips} -> "
          f"{gated.completed_trips}")
    mfd_gated = region_mfd(gated, labels, busiest)
    print(f"  MFD tightness     : {mfd_free.tightness():.3f} -> "
          f"{mfd_gated.tightness():.3f}")

    from repro.viz.charts import render_mfd
    from repro.viz.svg import save_svg

    save_svg(render_mfd(mfd_free, title="MFD: uncontrolled"), "mfd_free.svg")
    save_svg(render_mfd(mfd_gated, title="MFD: perimeter controlled"),
             "mfd_gated.svg")
    print("  wrote mfd_free.svg / mfd_gated.svg")

    print("\nGating holds the protected region below its jam regime at a "
          "bounded throughput cost — the management action the "
          "partitioning exists to enable.")


if __name__ == "__main__":
    main()
