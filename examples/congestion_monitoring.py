"""Congestion monitoring: the full operations workflow, live-instrumented.

A traffic management centre's loop, end to end:

1. bootstrap a global partitioning of the city;
2. as congestion evolves, refresh only the regions that changed
   (incremental/distributed repartitioning — paper Section 6.4) under
   a ``MonitoringSession``, which publishes per-region density gauges,
   update-latency histograms, churn counters and partition-quality
   gauges (ANS / GDBI / conductance) into a Prometheus-scrapable
   registry — here served on a local ``/metrics`` endpoint and
   scraped once over HTTP, exactly as a Prometheus server would;
3. per snapshot, print the region reports (level of service per
   region) and the boundary sharpness (where perimeter control would
   meter traffic);
4. export the final state as SVG + GeoJSON for the control-room map,
   plus the session's flight-recorder HTML report (trace timeline,
   metric tables, provenance).

Run:  python examples/congestion_monitoring.py [output-dir]
"""

from __future__ import annotations

import sys
import urllib.request
from pathlib import Path

from repro.analysis.boundary import boundary_sharpness
from repro.analysis.stats import partition_report
from repro.datasets.small import small_network_series
from repro.network.dual import build_road_graph
from repro.network.geojson import network_to_geojson, save_geojson
from repro.obs import MonitoringSession, parse_prometheus
from repro.pipeline.incremental import IncrementalRepartitioner
from repro.viz.svg import render_partitions, save_svg

K = 5
SNAPSHOTS = (30, 60, 90, 110)
SEED = 7


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    network, series = small_network_series(seed=SEED)
    graph = build_road_graph(network)

    inc = IncrementalRepartitioner(
        graph, k=K, staleness_threshold=0.2, seed=SEED
    )
    with MonitoringSession(inc, serve=True) as session:
        session.bootstrap(series[SNAPSHOTS[0]])
        print(f"bootstrapped {K} regions at t={SNAPSHOTS[0]}")
        print(f"metrics endpoint: {session.url}\n")

        labels = inc.labels
        for t in SNAPSHOTS[1:]:
            densities = series[t]
            report = session.update(densities)
            labels = report.labels
            print(f"t={t}: refreshed regions {report.refreshed or 'none'}, "
                  f"kept {len(report.kept)}, "
                  f"{report.n_relabelled} segments relabelled "
                  f"in {report.duration_s * 1e3:.1f} ms")
            for region in partition_report(network, labels, densities):
                print(f"   {region}")
            sharp = boundary_sharpness(densities, labels, graph.adjacency)
            worst = max(sharp.items(), key=lambda kv: kv[1])
            print(f"   sharpest boundary: regions {worst[0]} "
                  f"(density step {worst[1]:.4f} veh/m)\n")

        # scrape the endpoint the way Prometheus would, and validate
        # the exposition with the package's own strict parser
        body = urllib.request.urlopen(session.url, timeout=10).read().decode()
        samples, families = parse_prometheus(body)
        latency = next(
            s for s in samples
            if s.name == "repro_incremental_update_latency_s_count"
        )
        print(f"scraped {len(samples)} samples in {len(families)} families "
              f"({int(latency.value)} updates observed)")

        report_path = session.write_report(
            out_dir / "monitoring_report.html",
            title="congestion monitoring flight recorder",
        )

    svg_path = out_dir / "monitoring_final.svg"
    save_svg(render_partitions(network, labels, title="final regions"), svg_path)
    geojson_path = out_dir / "monitoring_final.geojson"
    save_geojson(
        network_to_geojson(network, labels=labels, densities=series[SNAPSHOTS[-1]]),
        geojson_path,
    )
    print(f"exported {svg_path}, {geojson_path} and {report_path}")


if __name__ == "__main__":
    main()
