"""Peak-hour analysis: how congestion regions evolve over a morning.

The paper motivates *repeated* partitioning at regular intervals: the
congested core grows toward the rush-hour peak and dissolves after.
This example simulates a 4-hour morning on the downtown network and
uses the analysis layer to track the regions:

* :class:`repro.analysis.PartitionTracker` repartitions each snapshot
  and aligns the labels, reporting churn and density contrast;
* :func:`repro.analysis.genealogy` classifies the structural changes
  (continuations / splits / merges) between snapshots.

Run:  python examples/peak_hour_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.genealogy import genealogy
from repro.analysis.tracking import PartitionTracker
from repro.datasets.small import small_network_series
from repro.network.dual import build_road_graph

K = 4
SNAPSHOTS = (20, 40, 60, 71, 90, 110)
SEED = 7


def main() -> None:
    network, series = small_network_series(seed=SEED)
    graph = build_road_graph(network)
    print(f"simulated {series.shape[0]} intervals on "
          f"{network.n_segments} segments\n")

    tracker = PartitionTracker(graph, k=K, scheme="ASG", seed=SEED)
    tracker.run(series, timestamps=SNAPSHOTS)

    print(f"{'t':>4} {'total veh/m':>12} {'max region':>11} "
          f"{'min region':>11} {'contrast':>9} {'churn':>6}")
    for record in tracker.records:
        densities = series[record.t]
        print(f"{record.t:>4} {densities.sum():>12.3f} "
              f"{record.max_mean:>11.4f} "
              f"{record.min_mean:>11.4f} "
              f"{record.contrast:>9.4f} {record.churn:>6.2f}")

    print("\nstructural changes between snapshots:")
    labelings = [record.labels for record in tracker.records]
    for (t_from, t_to), transition in zip(
        zip(SNAPSHOTS, SNAPSHOTS[1:]), genealogy(labelings, threshold=0.6)
    ):
        events = []
        if transition.splits:
            events.append(f"splits {dict(transition.splits)}")
        if transition.merges:
            events.append(f"merges {dict(transition.merges)}")
        if not events:
            events.append(
                f"{len(transition.continuations)} regions continue"
            )
        print(f"  t={t_from:>3} -> t={t_to:>3}: " + "; ".join(events))

    print("\nThe contrast column peaks around the rush hour: regions are "
          "most distinct when congestion is strongest, which is exactly "
          "when congestion-aware traffic management pays off.")


if __name__ == "__main__":
    main()
