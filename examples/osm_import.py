"""OSM import: the real-data path, end to end.

The paper's large networks are OpenStreetMap extracts. This example
shows the same pipeline on an ``.osm`` XML file: parse it into a
:class:`repro.network.RoadNetwork`, attach congestion (here a hotspot
profile — swap in your own detector/FCD densities), partition, and
export the regions to GeoJSON.

A small self-contained sample file is generated on the fly so the
example runs offline; point ``OSM_PATH`` at your own extract to use
real data.

Run:  python examples/osm_import.py [path/to/extract.osm]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.network.dual import build_road_graph
from repro.network.geojson import network_to_geojson, save_geojson
from repro.network.osm import load_osm_xml
from repro.pipeline.schemes import run_scheme
from repro.traffic.profiles import hotspot_profile

K = 3
SEED = 5


def _write_sample_osm(path: Path) -> None:
    """A toy 4x4 street grid in OSM XML (lat/lon around Melbourne)."""
    lines = ['<?xml version="1.0" encoding="UTF-8"?>', '<osm version="0.6">']
    # 16 nodes on a grid, ~110 m apart
    node_id = 1
    for r in range(4):
        for c in range(4):
            lat = -37.8100 + r * 0.0010
            lon = 144.9600 + c * 0.0013
            lines.append(f'  <node id="{node_id}" lat="{lat}" lon="{lon}"/>')
            node_id += 1

    def nid(r, c):
        return r * 4 + c + 1

    way_id = 100
    for r in range(4):  # east-west streets
        refs = "".join(f'<nd ref="{nid(r, c)}"/>' for c in range(4))
        lines.append(
            f'  <way id="{way_id}">{refs}'
            f'<tag k="highway" v="residential"/>'
            f'<tag k="name" v="Row {r} Street"/></way>'
        )
        way_id += 1
    for c in range(4):  # north-south avenues, one-way
        refs = "".join(f'<nd ref="{nid(r, c)}"/>' for r in range(4))
        lines.append(
            f'  <way id="{way_id}">{refs}'
            f'<tag k="highway" v="tertiary"/>'
            f'<tag k="oneway" v="yes"/>'
            f'<tag k="maxspeed" v="50"/></way>'
        )
        way_id += 1
    lines.append("</osm>")
    path.write_text("\n".join(lines), encoding="utf-8")


def main() -> None:
    if len(sys.argv) > 1:
        osm_path = Path(sys.argv[1])
    else:
        osm_path = Path(tempfile.gettempdir()) / "repro_sample.osm"
        _write_sample_osm(osm_path)
        print(f"(no extract given; wrote sample grid to {osm_path})")

    network = load_osm_xml(osm_path)
    print(f"parsed {osm_path.name}: {network.n_segments} segments, "
          f"{network.n_intersections} intersections")
    named = sorted({s.name for s in network.segments if s.name})
    if named:
        print(f"streets: {', '.join(named[:5])}"
              + (", ..." if len(named) > 5 else ""))

    densities = hotspot_profile(network, n_hotspots=2, seed=SEED)
    graph = build_road_graph(network).with_features(densities)
    result = run_scheme("ASG", graph, K, seed=SEED)
    print(f"partitioned into {result.k} regions: "
          f"{result.partition_sizes().tolist()} segments each")

    out = Path(tempfile.gettempdir()) / "repro_osm_regions.geojson"
    save_geojson(
        network_to_geojson(
            network,
            labels=result.labels,
            densities=densities,
            origin=(-37.81, 144.96),  # re-anchor to WGS84 for web maps
        ),
        out,
    )
    print(f"wrote {out} (open on geojson.io)")


if __name__ == "__main__":
    main()
