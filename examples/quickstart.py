"""Quickstart: partition a downtown road network by congestion.

Builds the D1-analogue network (a ~436-segment downtown grid), runs a
microsimulation to obtain per-segment traffic densities, partitions
the network into 6 congestion-homogeneous regions with the paper's
ASG scheme (supergraph + alpha-Cut), and prints the partition summary
and the evaluation metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SpatialPartitioningFramework, small_network

K = 6
SEED = 7


def main() -> None:
    # 1. Data: network + densities (vehicles/metre per road segment).
    #    small_network simulates 4 hours of traffic and returns the
    #    density snapshot at interval t=71, as in the paper.
    network, densities = small_network(seed=SEED)
    print(f"network: {network.n_segments} road segments, "
          f"{network.n_intersections} intersections")
    print(f"densities: min={densities.min():.4f} "
          f"mean={densities.mean():.4f} max={densities.max():.4f} veh/m")

    # 2. Partition. The framework runs all three paper modules:
    #    road-graph construction -> supergraph mining -> alpha-Cut.
    framework = SpatialPartitioningFramework(k=K, scheme="ASG", seed=SEED)
    result = framework.partition(network, densities)

    # 3. Inspect the result.
    print(f"\npartitions: {result.k} "
          f"(supergraph had {result.n_supernodes} supernodes)")
    road_graph = framework.last_road_graph
    feats = np.asarray(road_graph.features)
    for i in range(result.k):
        members = np.flatnonzero(result.labels == i)
        print(f"  partition {i}: {members.size:4d} segments, "
              f"mean density {feats[members].mean():.4f} veh/m")

    # 4. Evaluate against the paper's Section 6.2 metrics.
    metrics = result.evaluate(road_graph)
    print("\nmetrics (inter higher is better, the rest lower):")
    for name in ("inter", "intra", "gdbi", "ans"):
        print(f"  {name:<6}= {metrics[name]:.4f}")

    validation = result.validate(road_graph)
    print(f"\nall partitions connected (C.2): {validation.is_valid}")
    print(f"module timings: " + ", ".join(
        f"{k}={v:.3f}s" for k, v in result.timings.items()))


if __name__ == "__main__":
    main()
