"""Corridor study: demand modelling, signals, and a consensus layout.

A planning-grade workflow on a synthetic district:

1. build the street grid and install two-phase traffic signals;
2. derive zone-to-zone demand with a doubly-constrained gravity model
   (residential quadrants produce, the CBD quadrant attracts);
3. simulate the signalised network loading from that OD matrix;
4. partition several snapshots and fuse them into one *consensus*
   region layout for the whole period;
5. report each region's level of service and its critical segments
   (the ones whose closure would split the region).

Run:  python examples/corridor_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.consensus import consensus_partition, stability_map
from repro.analysis.stats import partition_report
from repro.graph.critical import critical_segments
from repro.network.dual import build_road_graph
from repro.network.generators import grid_network
from repro.pipeline.schemes import run_scheme
from repro.traffic.demand import gravity_model, trips_from_od
from repro.traffic.signals import signalize
from repro.traffic.simulator import MicroSimulator

SEED = 11
K = 4
SNAPSHOTS = (20, 30, 40, 50)


def main() -> None:
    # 1. network + signals
    network = grid_network(8, 8, spacing=110.0, two_way=True)
    signals = signalize(network, green_steps=2)
    print(f"network: {network.n_segments} segments, "
          f"{len(signals)} signalised junctions")

    # 2. gravity demand: four quadrant zones, CBD quadrant attracts
    zones = [[], [], [], []]
    for inter in network.intersections:
        r, c = divmod(inter.id, 8)
        zones[(r >= 4) * 2 + (c >= 4)].append(inter.id)
    productions = np.array([900.0, 900.0, 900.0, 300.0])
    attractions = np.array([300.0, 300.0, 300.0, 2100.0])  # zone 3 = CBD
    od = gravity_model(network, zones, productions, attractions, beta=2e-3)
    print(f"gravity OD: {od.total_trips():.0f} expected trips, "
          f"{od.trips[0, 3]:.0f} from zone 0 to the CBD")

    # 3. signalised network loading
    trips = trips_from_od(network, od, n_timestamps=60, seed=SEED)
    simulator = MicroSimulator(network, dt=60.0, seed=SEED)
    result = simulator.run(
        n_vehicles=0, n_steps=60, trips=trips, signals=signals
    )
    print(f"simulated {len(trips)} trips, {result.completed_trips} completed")

    # 4. consensus regions across the period
    graph = build_road_graph(network)
    labelings = []
    for t in SNAPSHOTS:
        g_t = graph.with_features(result.snapshot(t))
        labelings.append(run_scheme("ASG", g_t, K, seed=SEED).labels)
    # alpha-Cut on the co-association weights: robust to drifting
    # snapshot partitions (thresholded components either fuse into one
    # giant region or shatter here, depending on the agreement bar)
    consensus = consensus_partition(
        graph.adjacency, labelings, k=K, method="alphacut", seed=SEED
    )
    stability = stability_map(graph.adjacency, labelings)
    print(f"\nconsensus layout over t={list(SNAPSHOTS)}: "
          f"{int(consensus.max()) + 1} regions, "
          f"mean neighbourhood stability {stability.mean():.2f}")

    # 5. per-region reports + critical segments
    final_density = result.snapshot(SNAPSHOTS[-1])
    for report in partition_report(network, consensus, final_density):
        print(f"  {report}")
    critical = critical_segments(graph.adjacency, consensus)
    print(f"\ncritical segments (closure splits a region): "
          f"{critical.size} of {network.n_segments}")


if __name__ == "__main__":
    main()
